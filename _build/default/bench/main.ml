(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4) on this repository's substrates, then runs a
   Bechamel micro-benchmark per experiment kernel.

   Usage:  dune exec bench/main.exe            (all sections)
           dune exec bench/main.exe -- table1  (one section)
           dune exec bench/main.exe -- --no-micro  (skip Bechamel) *)

let ctx = Transform.Register.full_context ()

let banner title paper =
  Fmt.pr "@.============================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "  (paper: %s)@." paper;
  Fmt.pr "============================================================@."

(* ------------------------------------------------------------------ *)
(* sections                                                            *)
(* ------------------------------------------------------------------ *)

let table1 () =
  banner "E1 - Table 1: compile-time overhead of the Transform dialect"
    "five ML models, pass manager vs transform interpreter, <= 2.6% overhead";
  let rows = Experiments.Table1.run ~reps:7 ctx in
  Experiments.Table1.pp_table Fmt.stdout rows;
  let max_overhead =
    List.fold_left
      (fun acc r -> Float.max acc r.Experiments.Table1.overhead_pct)
      0.0 rows
  in
  Fmt.pr "max overhead measured: %.1f%%@." max_overhead;
  rows

let fig6 rows =
  banner "E2 - Figure 6: compile time per model, MLIR vs Transform"
    "bar chart of the Table 1 data";
  Experiments.Table1.pp_figure Fmt.stdout rows

let table2 () =
  banner "E3 - Table 2 / Case Study 2: pre/post-conditions + static checking"
    "naive pipeline statically flagged (leftover affine.apply); robust passes";
  Experiments.Table2.pp_conditions Fmt.stdout ();
  Fmt.pr "@.";
  let o = Experiments.Table2.run ctx in
  Experiments.Table2.pp_outcome Fmt.stdout o

let cs3 () =
  banner "E4 - Case Study 3: hunting the counterproductive pattern"
    "binary search over ~20 patterns; 4s/probe vs ~195s/rebuild; ~9% regression";
  let o = Experiments.Cs3.run ctx in
  Experiments.Cs3.pp_outcome Fmt.stdout o

let cs4 () =
  banner "E5 - Case Study 4 / Figures 7-8: fine-grained loop control"
    "OpenMP ~ Transform (0.48s vs 0.49s); microkernel 0.017s (~28x)";
  let o = Experiments.Cs4.run ctx in
  Experiments.Cs4.pp_outcome Fmt.stdout o

let cs5 () =
  banner "E6 - Case Study 5 / Figures 9-11: autotuning the Transform script"
    "BaCO-style Bayesian search over tile sizes; monotone evolution, 1.68x";
  let o = Experiments.Cs5.run ctx in
  Experiments.Cs5.pp_outcome Fmt.stdout o

let cs5s () =
  banner "Extension - structured-level autotuning"
    "tile sizes interact with microkernel eligibility through alternatives";
  let o = Experiments.Cs5_structured.run ctx in
  Experiments.Cs5_structured.pp_outcome Fmt.stdout o

let s34 () =
  banner "E8 - Section 3.4 / Figure 5: transform-IR introspection for AD"
    "the AD transform emits adds of the dialect current at its position";
  let rows = Experiments.S34.run ctx in
  Experiments.S34.pp_rows Fmt.stdout rows

let ablations () =
  banner "Ablations: transform-IR simplification and checking overheads"
    "design choices called out in DESIGN.md";
  let rows = Experiments.Ablations.run ctx in
  Experiments.Ablations.pp_rows Fmt.stdout rows;
  Fmt.pr "@.";
  Experiments.Ablations.pp_check_row Fmt.stdout
    (Experiments.Ablations.dynamic_check_overhead ctx);
  Fmt.pr "@.";
  Experiments.Ablations.pp_ilist_rows Fmt.stdout
    (Experiments.Ablations.ilist_ablation ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment kernel       *)
(* ------------------------------------------------------------------ *)

let micro () =
  banner "Micro-benchmarks (Bechamel)" "one staged kernel per experiment";
  let open Bechamel in
  let squeezenet =
    List.find
      (fun s -> s.Workloads.Models.sp_name = "squeezenet")
      Workloads.Models.paper_models
  in
  let passes =
    match Passes.Pass.parse_pipeline Workloads.Models.tosa_pipeline_str with
    | Ok ps -> ps
    | Error e -> failwith (Ir.Diag.to_string e)
  in
  let tests =
    [
      Test.make ~name:"table1/pass-manager(squeezenet)"
        (Staged.stage (fun () ->
             let md = Workloads.Models.build squeezenet in
             ignore (Passes.Pass.run_pipeline ctx passes md)));
      (let script = Transform.From_pipeline.script_of_pipeline passes in
       Test.make ~name:"table1/transform(squeezenet)"
         (Staged.stage (fun () ->
              let md = Workloads.Models.build squeezenet in
              ignore (Transform.Interp.apply ctx ~script ~payload:md))));
      Test.make ~name:"table2/static-checker"
        (Staged.stage (fun () ->
             ignore
               (Transform.Conditions.check_passes
                  ~initial:Experiments.Table2.initial_opset
                  ~final:Experiments.Table2.final_opset
                  (List.map Passes.Pass.lookup_exn
                     Workloads.Subview_kernel.naive_pipeline))));
      Test.make ~name:"cs3/pattern-probe(llm)"
        (Staged.stage (fun () ->
             ignore
               (Experiments.Cs3.probe ctx (Dialects.Shlo_patterns.names ()))));
      Test.make ~name:"cs4/split+tile+to_library"
        (Staged.stage (fun () ->
             let md =
               Workloads.Matmul.build_module ~m:Experiments.Cs4.m
                 ~n:Experiments.Cs4.n ~k:Experiments.Cs4.k ()
             in
             ignore
               (Transform.Interp.apply ctx
                  ~script:(Experiments.Cs4.microkernel_script ())
                  ~payload:md)));
      Test.make ~name:"cs5/one-evaluation(32^3)"
        (Staged.stage (fun () ->
             let md =
               Workloads.Matmul.build_module ~order:Workloads.Matmul.Ikj ~m:32
                 ~n:32 ~k:32 ()
             in
             ignore (Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m:32 ~n:32 ~k:32 md)));
      Test.make ~name:"s34/introspect+ad"
        (Staged.stage (fun () -> ignore (Experiments.S34.run ctx)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test
      in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ e ] -> Fmt.pr "  %-40s %14.1f ns/run@." name e
          | _ -> Fmt.pr "  %-40s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let no_micro = List.mem "--no-micro" args in
  let args = List.filter (fun a -> a <> "--no-micro") args in
  let want s = args = [] || List.mem s args in
  Fmt.pr "OCaml Transform-dialect reproduction - benchmark harness@.";
  Fmt.pr "(simulated machine: %.1f GHz, L1 %dK, L2 %dK; see DESIGN.md)@."
    Interp.Machine.default_config.Interp.Machine.freq_ghz
    (Interp.Machine.default_config.Interp.Machine.l1_size / 1024)
    (Interp.Machine.default_config.Interp.Machine.l2_size / 1024);
  let t1_rows = ref None in
  if want "table1" then t1_rows := Some (table1 ());
  if want "fig6" then
    fig6
      (match !t1_rows with
      | Some rows -> rows
      | None -> Experiments.Table1.run ~reps:3 ctx);
  if want "table2" then table2 ();
  if want "cs3" then cs3 ();
  if want "cs4" then cs4 ();
  if want "cs5" then cs5 ();
  if want "cs5-structured" then cs5s ();
  if want "s34" then s34 ();
  if want "ablations" then ablations ();
  if (not no_micro) && (args = [] || List.mem "micro" args) then micro ();
  Fmt.pr "@.done.@."
