(** Case Study 3: debugging a counterproductive optimization pattern by
    binary search over the pattern set, driven by Transform scripts.

    Run with: dune exec examples/pattern_debugging.exe *)

let () =
  let ctx = Transform.Register.full_context () in
  Fmt.pr "Registered StableHLO-style peephole patterns:@.";
  List.iter (Fmt.pr "  %s@.") (Dialects.Shlo_patterns.names ());
  Fmt.pr "@.";
  let o = Experiments.Cs3.run ctx in
  Experiments.Cs3.pp_outcome Fmt.stdout o;
  Fmt.pr "@.Probe trail:@.";
  List.iteri
    (fun i p ->
      Fmt.pr "  probe %2d: %2d patterns enabled -> %.3f ms@." (i + 1)
        (List.length p.Experiments.Cs3.pr_patterns)
        (p.Experiments.Cs3.pr_estimate *. 1e3))
    o.Experiments.Cs3.probes
