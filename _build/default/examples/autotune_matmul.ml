(** Case Study 5: autotuning the tile sizes of a parametric Transform
    script with the BaCO-like Bayesian optimizer.

    Run with: dune exec examples/autotune_matmul.exe *)

let () =
  let ctx = Transform.Register.full_context () in
  Fmt.pr "search space: tile_i | tile_k | tile_j dividing their dims,@.";
  Fmt.pr "              vectorize only if tile_j %% %d == 0@.@."
    Experiments.Cs5.vector_width;
  let space = Experiments.Cs5.space () in
  Fmt.pr "feasible configurations: %d of %d raw@.@."
    (List.length (Autotune.Space.enumerate space))
    (Autotune.Space.raw_size space);
  let o = Experiments.Cs5.run ctx in
  Experiments.Cs5.pp_outcome Fmt.stdout o
