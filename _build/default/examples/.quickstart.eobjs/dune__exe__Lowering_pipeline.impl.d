examples/lowering_pipeline.ml: Experiments Fmt Transform
