examples/structured_ops.ml: Fmt Interp Ir Pretty Symbol Transform Verifier Workloads
