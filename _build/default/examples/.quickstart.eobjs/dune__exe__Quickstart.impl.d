examples/quickstart.ml: Arith Builtin Dialects Dutil Fmt Func Ir Ircore List Memref Pretty Scf Transform Typ Verifier
