examples/microkernel.mli:
