examples/quickstart.mli:
