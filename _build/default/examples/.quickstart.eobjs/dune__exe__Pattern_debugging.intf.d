examples/pattern_debugging.mli:
