examples/lowering_pipeline.mli:
