examples/microkernel.ml: Experiments Fmt Ir Ircore List Option Printer Symbol Transform Workloads
