examples/pattern_debugging.ml: Dialects Experiments Fmt List Transform
