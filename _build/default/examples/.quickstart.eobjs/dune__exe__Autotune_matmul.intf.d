examples/autotune_matmul.mli:
