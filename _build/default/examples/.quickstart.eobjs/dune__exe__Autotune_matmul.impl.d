examples/autotune_matmul.ml: Autotune Experiments Fmt List Transform
