examples/structured_ops.mli:
