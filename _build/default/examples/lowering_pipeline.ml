(** Case Study 2: building robust lowering pipelines with pre/post
    conditions. Statically checks the naive and robust pipelines, then runs
    them on the static- and dynamic-offset subview kernels.

    Run with: dune exec examples/lowering_pipeline.exe *)

let () =
  let ctx = Transform.Register.full_context () in
  Fmt.pr "=== Table 2: declared pre/post-conditions ===@.";
  Experiments.Table2.pp_conditions Fmt.stdout ();
  Fmt.pr "@.";
  let o = Experiments.Table2.run ctx in
  Experiments.Table2.pp_outcome Fmt.stdout o;
  Fmt.pr
    "@.The static checker flags the naive pipeline for *all possible \
     inputs*,@.while dynamically only the dynamic-offset variant fails — \
     exactly the@.trap the paper describes: a pipeline that happens to work \
     on today's@.input and breaks on tomorrow's.@."
