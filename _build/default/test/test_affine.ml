(* Affine expressions and maps: simplification, evaluation, composition. *)

open Ir

let check = Alcotest.check
let ci = Alcotest.int

(* random affine expression generator over n dims / m syms *)
let gen_expr ~dims ~syms =
  let open QCheck.Gen in
  sized (fun size ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Affine.Dim (i mod dims)) small_nat;
                map (fun i -> Affine.Sym (i mod syms)) small_nat;
                map (fun c -> Affine.Const (c - 8)) (int_bound 16);
              ]
          else
            oneof
              [
                map2 (fun a b -> Affine.Add (a, b)) (self (n / 2)) (self (n / 2));
                map2 (fun a b -> Affine.Mul (a, b)) (self (n / 2)) (self (n / 2));
                map2
                  (fun a c -> Affine.Mod (a, Affine.Const (1 + (c mod 7))))
                  (self (n - 1)) small_nat;
                map2
                  (fun a c -> Affine.Floordiv (a, Affine.Const (1 + (c mod 7))))
                  (self (n - 1)) small_nat;
                map2
                  (fun a c -> Affine.Ceildiv (a, Affine.Const (1 + (c mod 7))))
                  (self (n - 1)) small_nat;
              ])
        (min size 6))

let arb_expr = QCheck.make (gen_expr ~dims:3 ~syms:2)

let prop_simplify_preserves_eval =
  QCheck.Test.make ~count:300 ~name:"simplify preserves evaluation"
    QCheck.(pair arb_expr (pair (array_of_size (QCheck.Gen.return 3) small_int) (array_of_size (QCheck.Gen.return 2) small_int)))
    (fun (e, (dims, syms)) ->
      let dims = Array.map (fun x -> x mod 100) dims in
      let syms = Array.map (fun x -> x mod 100) syms in
      match Affine.eval ~dims ~syms e with
      | v -> Affine.eval ~dims ~syms (Affine.simplify e) = v
      | exception Affine.Eval_error _ -> true)

let prop_simplify_idempotent =
  QCheck.Test.make ~count:300 ~name:"simplify is idempotent" arb_expr (fun e ->
      let s = Affine.simplify e in
      Affine.simplify s = s)

let test_simplify_constants () =
  let e = Affine.(Add (Const 2, Mul (Const 3, Const 4))) in
  check ci "2+3*4" 14 (match Affine.simplify e with Affine.Const c -> c | _ -> -1)

let test_simplify_identities () =
  check Alcotest.bool "x+0 = x" true
    (Affine.simplify Affine.(Add (Dim 0, Const 0)) = Affine.Dim 0);
  check Alcotest.bool "x*1 = x" true
    (Affine.simplify Affine.(Mul (Dim 0, Const 1)) = Affine.Dim 0);
  check Alcotest.bool "x*0 = 0" true
    (Affine.simplify Affine.(Mul (Dim 0, Const 0)) = Affine.Const 0);
  check Alcotest.bool "x mod 1 = 0" true
    (Affine.simplify Affine.(Mod (Dim 0, Const 1)) = Affine.Const 0);
  check Alcotest.bool "x floordiv 1 = x" true
    (Affine.simplify Affine.(Floordiv (Dim 0, Const 1)) = Affine.Dim 0)

let test_floordiv_negative () =
  check ci "-7 floordiv 2 = -4" (-4)
    (Affine.eval ~dims:[||] ~syms:[||]
       Affine.(Floordiv (Const (-7), Const 2)));
  check ci "-7 ceildiv 2 = -3" (-3)
    (Affine.eval ~dims:[||] ~syms:[||] Affine.(Ceildiv (Const (-7), Const 2)));
  check ci "-7 mod 3 = 2" 2
    (Affine.eval ~dims:[||] ~syms:[||] Affine.(Mod (Const (-7), Const 3)))

let test_map_eval () =
  let m =
    Affine.make_map ~num_dims:2 ~num_syms:1
      [ Affine.(Add (Mul (Dim 0, Const 4), Add (Dim 1, Sym 0))) ]
  in
  check (Alcotest.list ci) "eval" [ 4 + 2 + 10 ]
    (Affine.eval_map m ~dims:[| 1; 2 |] ~syms:[| 10 |])

let test_identity_map () =
  let m = Affine.identity_map 3 in
  Alcotest.(check bool) "is_identity" true (Affine.is_identity m);
  check (Alcotest.list ci) "eval id" [ 7; 8; 9 ]
    (Affine.eval_map m ~dims:[| 7; 8; 9 |] ~syms:[||])

let test_compose () =
  (* f(x) = 2x + 1, g(y) = y + 3; f∘g (y) = 2y + 7 *)
  let f =
    Affine.make_map ~num_dims:1 ~num_syms:0
      [ Affine.(Add (Mul (Dim 0, Const 2), Const 1)) ]
  in
  let g =
    Affine.make_map ~num_dims:1 ~num_syms:0 [ Affine.(Add (Dim 0, Const 3)) ]
  in
  let fg = Affine.compose f g in
  check (Alcotest.list ci) "compose" [ (2 * 5) + 7 ]
    (Affine.eval_map fg ~dims:[| 5 |] ~syms:[||])

let prop_compose_matches_sequential =
  QCheck.Test.make ~count:200 ~name:"compose f g = f after g"
    QCheck.(pair arb_expr (array_of_size (QCheck.Gen.return 3) small_int))
    (fun (fe, dims) ->
      let dims = Array.map (fun x -> x mod 50) dims in
      (* g: three projections with offsets *)
      let g =
        Affine.make_map ~num_dims:3 ~num_syms:0
          [
            Affine.(Add (Dim 0, Const 1));
            Affine.(Add (Dim 1, Const 2));
            Affine.(Add (Dim 2, Const 3));
          ]
      in
      let f = Affine.make_map ~num_dims:3 ~num_syms:2 [ fe ] in
      let syms = [| 4; 5 |] in
      let fg = Affine.compose f g in
      match
        ( Affine.eval_map fg ~dims ~syms,
          Affine.eval_map f
            ~dims:(Array.of_list (Affine.eval_map g ~dims ~syms:[||]))
            ~syms )
      with
      | a, b -> a = b
      | exception Affine.Eval_error _ -> true)

let test_print_parse_roundtrip () =
  let m =
    Affine.make_map ~num_dims:2 ~num_syms:1
      [
        Affine.(Add (Mul (Dim 0, Const 4), Sym 0));
        Affine.(Mod (Dim 1, Const 8));
      ]
  in
  let s = Fmt.str "affine_map<%a>" Affine.pp_map m in
  match Parser.parse_attr_string s with
  | Ok (Attr.Affine_map m') ->
    Alcotest.(check bool)
      "round-trip evaluates equally" true
      (Affine.eval_map m ~dims:[| 3; 13 |] ~syms:[| 2 |]
      = Affine.eval_map m' ~dims:[| 3; 13 |] ~syms:[| 2 |])
  | Ok _ -> Alcotest.fail "parsed to non-map"
  | Error e -> Alcotest.failf "parse error: %s" e

let () =
  Alcotest.run "affine"
    [
      ( "simplify",
        [
          Alcotest.test_case "constants fold" `Quick test_simplify_constants;
          Alcotest.test_case "identities" `Quick test_simplify_identities;
          Alcotest.test_case "negative division semantics" `Quick
            test_floordiv_negative;
          QCheck_alcotest.to_alcotest prop_simplify_preserves_eval;
          QCheck_alcotest.to_alcotest prop_simplify_idempotent;
        ] );
      ( "maps",
        [
          Alcotest.test_case "eval" `Quick test_map_eval;
          Alcotest.test_case "identity" `Quick test_identity_map;
          Alcotest.test_case "compose" `Quick test_compose;
          QCheck_alcotest.to_alcotest prop_compose_matches_sequential;
          Alcotest.test_case "print/parse round-trip" `Quick
            test_print_parse_roundtrip;
        ] );
    ]
