test/test_loop_utils.mli:
