test/test_irdl.mli:
