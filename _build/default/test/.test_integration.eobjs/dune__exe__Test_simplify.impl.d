test/test_simplify.ml: Alcotest Attr Experiments Ir Ircore List Printer Rewriter String Symbol Transform Workloads
