test/test_invalidation.mli:
