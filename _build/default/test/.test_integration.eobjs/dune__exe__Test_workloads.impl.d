test/test_workloads.ml: Alcotest Array Fmt Interp Ir List Symbol Transform Verifier Workloads
