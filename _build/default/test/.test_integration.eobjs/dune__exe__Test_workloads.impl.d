test/test_workloads.ml: Alcotest Array Diag Fmt Interp Ir List Symbol Transform Verifier Workloads
