test/test_diag.mli:
