test/test_conditions.ml: Alcotest Experiments Ir List Opset Passes Transform Workloads
