test/test_interp.ml: Alcotest Arith Array Attr Builtin Dialects Dutil Float Fmt Func Interp Ir Ircore List Memref QCheck QCheck_alcotest Rewriter Scf Shlo_patterns String Transform Typ Workloads
