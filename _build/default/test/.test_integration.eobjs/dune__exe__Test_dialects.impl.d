test/test_dialects.ml: Alcotest Arith Attr Builtin Context Dialects Dutil Fmt Func Greedy Ir Ircore List Memref Opset Option Pattern Scf Shlo Shlo_patterns Symbol Transform Typ Workloads
