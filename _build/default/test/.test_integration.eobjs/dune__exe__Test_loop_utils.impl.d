test/test_loop_utils.ml: Alcotest Arith Array Builder Builtin Dialects Dutil Fmt Func Interp Ir Ircore List Memref Passes QCheck QCheck_alcotest Rewriter Scf Symbol Transform Typ Verifier Workloads
