test/test_integration.ml: Alcotest Diag Fmt Ir Ircore Passes Symbol Transform Verifier Workloads
