test/test_integration.ml: Alcotest Fmt Ir Ircore Passes Symbol Transform Verifier Workloads
