test/test_rewriter.ml: Alcotest Arith Attr Builder Builtin Diag Dialects Dutil Func Greedy Ir Ircore List Memref Passes Pattern Rewriter Symbol Transform Typ
