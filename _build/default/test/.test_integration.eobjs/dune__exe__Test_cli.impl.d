test/test_cli.ml: Alcotest Filename Fmt Fun Ir Json List Option String Sys
