test/test_diag.ml: Alcotest Context Diag Dialects Filename Fun Ir Ircore Json List Loc Option Passes Stdlib String Sys Trace Transform Verifier Workloads
