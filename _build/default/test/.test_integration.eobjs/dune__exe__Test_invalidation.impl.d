test/test_invalidation.ml: Alcotest Fmt List String Transform
