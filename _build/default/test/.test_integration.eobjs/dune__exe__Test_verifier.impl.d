test/test_verifier.ml: Alcotest Attr Builtin Diag Dialects Dutil Fmt Func Ir Ircore Parser String Transform Typ Verifier
