test/test_simplify.mli:
