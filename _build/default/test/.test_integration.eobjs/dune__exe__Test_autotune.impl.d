test/test_autotune.ml: Alcotest Array Autotune Float Fmt List QCheck QCheck_alcotest Random
