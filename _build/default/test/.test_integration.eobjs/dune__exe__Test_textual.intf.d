test/test_textual.mli:
