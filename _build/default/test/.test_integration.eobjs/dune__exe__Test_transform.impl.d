test/test_transform.ml: Alcotest Attr Builder Builtin Dialects Dutil Func Ir Ircore List Rewriter Shlo String Symbol Transform Typ Verifier Workloads
