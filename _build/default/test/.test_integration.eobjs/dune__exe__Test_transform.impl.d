test/test_transform.ml: Alcotest Attr Builder Builtin Diag Dialects Dutil Func Ir Ircore List Rewriter Shlo String Symbol Transform Typ Verifier Workloads
