test/test_parser.ml: Alcotest Attr Bytes Fmt Ir Ircore List Loc Option Parser Printer QCheck QCheck_alcotest String Typ
