test/test_experiments.ml: Alcotest Autotune Dialects Experiments Float List Result Transform
