test/test_structured.ml: Alcotest Fmt Interp Ir Ircore List Passes QCheck QCheck_alcotest Rewriter Symbol Transform Verifier Workloads
