test/test_textual.ml: Alcotest Diag Filename Fun Ir List Parser Printer String Symbol Sys Transform Verifier Workloads
