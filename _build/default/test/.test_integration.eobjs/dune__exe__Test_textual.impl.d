test/test_textual.ml: Alcotest Filename Fun Ir List Parser Printer String Symbol Sys Transform Verifier Workloads
