test/test_irdl.ml: Alcotest Attr Builder Diag Dialects Dutil Fmt Ir Ircore Irdl List Memref Opset Option Passes Rewriter String Symbol Transform Typ Workloads
