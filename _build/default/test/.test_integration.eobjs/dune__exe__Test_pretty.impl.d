test/test_pretty.ml: Alcotest Arith Builtin Dialects Dutil Func Ir Ircore List Parser Passes Pretty Printer Scf String Transform Typ Workloads
