test/test_pretty.ml: Alcotest Arith Builtin Diag Dialects Dutil Func Ir Ircore List Parser Passes Pretty Printer Scf String Transform Typ Workloads
