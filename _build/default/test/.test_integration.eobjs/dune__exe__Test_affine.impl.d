test/test_affine.ml: Affine Alcotest Array Attr Fmt Ir Parser QCheck QCheck_alcotest
