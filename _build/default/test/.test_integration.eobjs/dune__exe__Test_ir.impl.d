test/test_ir.ml: Alcotest Array Attr Fmt Ir Ircore List QCheck QCheck_alcotest Symbol Typ Util
