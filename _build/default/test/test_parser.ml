(* Lexer, parser, printer: round-trips and error reporting. *)

open Ir

(* substring containment for error-message checks *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let roundtrip_ok src =
  match Parser.parse_module src with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok m ->
    let s1 = Printer.op_to_string m in
    (match Parser.parse_module s1 with
    | Error e -> Alcotest.failf "reparse error: %s\n%s" e s1
    | Ok m2 ->
      let s2 = Printer.op_to_string m2 in
      Alcotest.(check string) "print-parse-print fixpoint" s1 s2)

let parse_err src =
  match Parser.parse_module src with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error e -> e

let test_basic () =
  roundtrip_ok
    {|"func.func"() ({
^bb0(%a: i32):
  %0 = "arith.addi"(%a, %a) : (i32, i32) -> i32
  "func.return"(%0) : (i32) -> ()
}) {sym_name = "f", function_type = (i32) -> i32} : () -> ()|}

let test_multi_result_groups () =
  roundtrip_ok
    {|%0:3 = "test.three"() : () -> (i32, f32, index)
"test.use"(%0#2, %0#0, %0) : (index, i32, i32) -> ()|}

let test_cfg_forward_refs () =
  roundtrip_ok
    {|"func.func"() ({
^bb0(%c: i1):
  "cf.cond_br"(%c)[^bb2, ^bb1] : (i1) -> ()
^bb1:
  "cf.br"()[^bb2] : () -> ()
^bb2:
  "func.return"() : () -> ()
}) {sym_name = "g", function_type = (i1) -> ()} : () -> ()|}

let test_block_args_across_blocks () =
  roundtrip_ok
    {|"func.func"() ({
^bb0:
  %x = "arith.constant"() {value = 1 : index} : () -> index
  "cf.br"(%x)[^bb1] : (index) -> ()
^bb1(%y: index):
  "func.return"() : () -> ()
}) {sym_name = "h", function_type = () -> ()} : () -> ()|}

let test_types () =
  List.iter
    (fun s ->
      match Parser.parse_type_string s with
      | Ok t -> Alcotest.(check string) s s (Typ.to_string t)
      | Error e -> Alcotest.failf "%s: %s" s e)
    [
      "i1"; "i32"; "i64"; "index"; "f16"; "bf16"; "f32"; "f64";
      "vector<8xf32>"; "vector<4x4xf32>"; "tensor<4x?xf32>"; "tensor<*xf32>";
      "memref<4x4xf32>"; "memref<?x?xf32>";
      "memref<4x4xf32, strided<[4, 1], offset: 2>>";
      "memref<4x4xf32, strided<[?, ?], offset: ?>>";
      "tuple<i32, f32>"; "(i32, f32) -> i1"; "() -> ()";
      "!transform.any_op"; "!llvm.ptr";
    ]

let test_nested_shaped_types () =
  match Parser.parse_type_string "tensor<4xvector<8xf32>>" with
  | Ok (Typ.Ranked_tensor ([ Typ.Static 4 ], Typ.Vector ([ 8 ], Typ.Float Typ.F32)))
    ->
    ()
  | Ok t -> Alcotest.failf "unexpected type %a" Typ.pp t
  | Error e -> Alcotest.fail e

let test_attrs () =
  List.iter
    (fun s ->
      match Parser.parse_attr_string s with
      | Ok a ->
        let s' = Attr.to_string a in
        (* second round must be stable *)
        (match Parser.parse_attr_string s' with
        | Ok a' -> Alcotest.(check string) s s' (Attr.to_string a')
        | Error e -> Alcotest.failf "restringify %s: %s" s' e)
      | Error e -> Alcotest.failf "%s: %s" s e)
    [
      "42 : i64"; "-7 : i32"; "0 : index"; "true"; "false"; "unit";
      "\"hello\\nworld\""; "[1 : i64, 2 : i64]"; "{a = 1 : i64, b = \"x\"}";
      "@sym"; "@a::@b::@c"; "array<i64: 1, 2, 3>"; "array<i64: >";
      "dense<[1, 2, 3]> : tensor<3xi32>"; "i32"; "(i32) -> i1";
    ]

let test_float_attr_roundtrip () =
  List.iter
    (fun f ->
      let s = Attr.to_string (Attr.Float (f, Typ.f32)) in
      match Parser.parse_attr_string s with
      | Ok (Attr.Float (f', _)) ->
        Alcotest.(check (float 0.0)) (Fmt.str "%h" f) f f'
      | Ok a -> Alcotest.failf "parsed %s to %a" s Attr.pp a
      | Error e -> Alcotest.failf "%s: %s" s e)
    [ 0.0; 1.0; -1.5; 3.14159; 1e-30; 42.0; 0.1 ]

let test_locations_skipped () =
  match
    Parser.parse_op_string
      {|"test.op"() : () -> () loc("file.mlir":1:2)|}
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_undefined_value () =
  let e = parse_err {|"test.use"(%nope) : (i32) -> ()|} in
  Alcotest.(check bool) "mentions undefined" true
    (contains e "undefined value")

and test_undefined_block () =
  let e =
    parse_err
      {|"func.func"() ({
^bb0:
  "cf.br"()[^nowhere] : () -> ()
}) {sym_name="f"} : () -> ()|}
  in
  Alcotest.(check bool) "mentions undefined block" true
    (contains e "undefined block")

and test_redefinition () =
  let e =
    parse_err
      {|%x = "test.a"() : () -> i32
%x = "test.b"() : () -> i32|}
  in
  Alcotest.(check bool) "mentions redefinition" true
    (contains e "redefinition")

let test_arity_mismatch () =
  let e = parse_err {|%x = "test.a"() : () -> (i32, i32)|} in
  ignore e (* any error is fine: declared 1 result name for 2 results *)

let test_operand_type_mismatch () =
  let e =
    parse_err
      {|%x = "test.a"() : () -> i32
"test.use"(%x) : (f32) -> ()|}
  in
  Alcotest.(check bool) "type mismatch reported" true
    (contains e "type")

(* random IR generator for round-trip fuzzing *)
let gen_module =
  let open QCheck.Gen in
  let scalar = oneofl [ Typ.i1; Typ.i32; Typ.i64; Typ.index; Typ.f32; Typ.f64 ] in
  let attr =
    oneof
      [
        map (fun n -> Attr.Int (n, Typ.i64)) small_signed_int;
        map (fun b -> Attr.Bool b) bool;
        map (fun s -> Attr.String s) (string_size ~gen:printable (int_bound 8));
        map (fun xs -> Attr.Int_array xs) (small_list small_nat);
        return Attr.Unit;
      ]
  in
  let rec ops_gen depth n defs =
    if n = 0 then return []
    else
      let op_gen =
        oneof
          ([
             (* nullary def *)
             (let* t = scalar in
              let* a = attr in
              return (`Def (t, [ ("v", a) ])));
           ]
          @ (if defs = [] then []
             else
               [
                 (let* i = int_bound (List.length defs - 1) in
                  return (`Use i));
               ])
          @
          if depth > 0 then
            [
              (let* body_n = int_bound 3 in
               let* body = ops_gen (depth - 1) body_n [] in
               return (`Region body));
            ]
          else [])
      in
      let* first = op_gen in
      let* rest = ops_gen depth (n - 1) (first :: defs) in
      return (first :: rest)
  in
  let* n = int_range 1 10 in
  ops_gen 2 n []

let build_random_module spec =
  let block = Ircore.create_block () in
  let defs = ref [] in
  let fresh = ref 0 in
  let rec build_into block spec =
    List.iter
      (fun item ->
        incr fresh;
        match item with
        | `Def (t, attrs) ->
          let o =
            Ircore.create ~result_types:[ t ] ~attrs (Fmt.str "test.def%d" !fresh)
          in
          Ircore.insert_at_end block o;
          defs := Ircore.result o :: !defs
        | `Use i ->
          let ds = !defs in
          if ds <> [] then begin
            let v = List.nth ds (i mod List.length ds) in
            Ircore.insert_at_end block
              (Ircore.create ~operands:[ v ] (Fmt.str "test.use%d" !fresh))
          end
        | `Region body ->
          let inner = Ircore.create_block () in
          let saved = !defs in
          build_into inner body;
          defs := saved;
          Ircore.insert_at_end block
            (Ircore.create
               ~regions:[ Ircore.region_with_block inner ]
               (Fmt.str "test.region%d" !fresh)))
      spec
  in
  build_into block spec;
  Ircore.create ~regions:[ Ircore.region_with_block block ] "builtin.module"

let prop_roundtrip =
  QCheck.Test.make ~count:100 ~name:"random module print/parse round-trip"
    (QCheck.make gen_module) (fun spec ->
      let m = build_random_module spec in
      let s1 = Printer.op_to_string m in
      match Parser.parse_module s1 with
      | Error _ -> false
      | Ok m2 -> Printer.op_to_string m2 = s1)

(* fuzz: the parser returns Error on garbage instead of raising *)
let prop_parser_total =
  QCheck.Test.make ~count:500 ~name:"parser never raises on arbitrary input"
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 80) QCheck.Gen.printable)
    (fun s ->
      match Parser.parse_module s with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* fuzz: near-miss mutations of valid IR also never raise *)
let prop_parser_total_on_mutations =
  QCheck.Test.make ~count:300
    ~name:"parser never raises on mutated valid IR"
    QCheck.(pair small_nat printable_char)
    (fun (pos, c) ->
      let base =
        {|"func.func"() ({
^bb0(%a: i32):
  %0 = "arith.addi"(%a, %a) : (i32, i32) -> i32
  "func.return"(%0) : (i32) -> ()
}) {sym_name = "f", function_type = (i32) -> i32} : () -> ()|}
      in
      let b = Bytes.of_string base in
      Bytes.set b (pos mod Bytes.length b) c;
      match Parser.parse_module (Bytes.to_string b) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* appended: location round-trips through the parser and loc-enabled printer *)
let test_locations_roundtrip () =
  let src =
    {|"test.a"() : () -> () loc("model.py":12:3)
"test.b"() : () -> () loc("fused.op" at loc("m.py":1:1))
"test.c"() : () -> () loc(fused[loc("a.py":1:1), loc("b.py":2:2)])
"test.d"() : () -> () loc(unknown)|}
  in
  match Parser.parse_module src with
  | Error e -> Alcotest.fail e
  | Ok m ->
    let ops b = Ircore.block_ops b in
    let block =
      match m.Ircore.regions with
      | [ r ] -> Option.get (Ircore.region_first_block r)
      | _ -> Alcotest.fail "no region"
    in
    (match ops block with
    | [ a; b; c; d ] ->
      Alcotest.(check bool) "file loc" true
        (a.Ircore.op_loc = Loc.File { file = "model.py"; line = 12; col = 3 });
      Alcotest.(check bool) "named loc" true
        (match b.Ircore.op_loc with Loc.Name ("fused.op", _) -> true | _ -> false);
      Alcotest.(check bool) "fused loc" true
        (match c.Ircore.op_loc with Loc.Fused [ _; _ ] -> true | _ -> false);
      Alcotest.(check bool) "unknown loc" true (d.Ircore.op_loc = Loc.Unknown)
    | _ -> Alcotest.fail "expected 4 ops");
    (* loc-enabled printing must itself re-parse to the same locations *)
    let s = Printer.op_to_string_locs m in
    (match Parser.parse_module s with
    | Error e -> Alcotest.failf "reparse with locs: %s\n%s" e s
    | Ok m2 ->
      Alcotest.(check string) "locs round-trip" s (Printer.op_to_string_locs m2))

let () =
  Alcotest.run "parser"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "basic function" `Quick test_basic;
          Alcotest.test_case "multi-result groups" `Quick
            test_multi_result_groups;
          Alcotest.test_case "CFG with forward refs" `Quick
            test_cfg_forward_refs;
          Alcotest.test_case "values across blocks" `Quick
            test_block_args_across_blocks;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_parser_total;
          QCheck_alcotest.to_alcotest prop_parser_total_on_mutations;
        ] );
      ( "types+attrs",
        [
          Alcotest.test_case "type syntax" `Quick test_types;
          Alcotest.test_case "nested shaped types" `Quick
            test_nested_shaped_types;
          Alcotest.test_case "attribute syntax" `Quick test_attrs;
          Alcotest.test_case "float attr round-trip" `Quick
            test_float_attr_roundtrip;
          Alcotest.test_case "trailing locations" `Quick test_locations_skipped;
        ] );
      ( "errors",
        [
          Alcotest.test_case "undefined value" `Quick test_undefined_value;
          Alcotest.test_case "undefined block" `Quick test_undefined_block;
          Alcotest.test_case "redefinition" `Quick test_redefinition;
          Alcotest.test_case "result arity mismatch" `Quick test_arity_mismatch;
          Alcotest.test_case "operand type mismatch" `Quick
            test_operand_type_mismatch;
          Alcotest.test_case "location round-trip" `Quick
            test_locations_roundtrip;
        ] );
    ]
