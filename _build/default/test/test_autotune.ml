(* Autotuning: search space, linear algebra, GP surrogate, searches. *)

module A = Autotune

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cf = Alcotest.float 1e-6

(* ------------------------------------------------------------------ *)
(* space                                                               *)
(* ------------------------------------------------------------------ *)

let small_space () =
  A.Space.make
    ~constraints:
      [ ("sum<=8", fun p -> A.Space.get p "a" + A.Space.get p "b" <= 8) ]
    [ A.Space.param "a" [ 1; 2; 4; 8 ]; A.Space.param "b" [ 1; 2; 4; 8 ] ]

let test_space_enumerate () =
  let s = small_space () in
  check ci "raw size" 16 (A.Space.raw_size s);
  let feasible = A.Space.enumerate s in
  (* feasible pairs with sum <= 8: a=1 with b in {1,2,4}; a=2 with b in
     {1,2,4}; a=4 with b in {1,2,4}; a=8 with none — 9 total *)
  check ci "feasible count" 9 (List.length feasible);
  List.iter
    (fun p -> check cb "satisfies constraint" true (A.Space.feasible s p))
    feasible

let test_space_sample_feasible () =
  let s = small_space () in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 50 do
    match A.Space.sample s rng with
    | Some p -> check cb "sampled feasible" true (A.Space.feasible s p)
    | None -> Alcotest.fail "sampling failed"
  done

let test_space_encode () =
  let s = small_space () in
  let e = A.Space.encode s [ ("a", 1); ("b", 8) ] in
  check cf "a at 0" 0.0 e.(0);
  check cf "b at 1" 1.0 e.(1)

let test_divisors () =
  check (Alcotest.list ci) "divisors of 12" [ 1; 2; 3; 4; 6; 12 ]
    (A.Space.divisors 12)

(* ------------------------------------------------------------------ *)
(* linear algebra                                                      *)
(* ------------------------------------------------------------------ *)

let test_cholesky_solve () =
  (* A = [[4,2],[2,3]], b = [1, 2]; x = A^-1 b = [ -1/8, 3/4 ] *)
  let a = [| [| 4.0; 2.0 |]; [| 2.0; 3.0 |] |] in
  match Autotune.La.cholesky a with
  | None -> Alcotest.fail "SPD matrix rejected"
  | Some l ->
    let x = Autotune.La.cholesky_solve l [| 1.0; 2.0 |] in
    check (Alcotest.float 1e-6) "x0" (-0.125) x.(0);
    check (Alcotest.float 1e-6) "x1" 0.75 x.(1)

and test_cholesky_rejects_non_spd () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  (* eigenvalues 3, -1 *)
  match Autotune.La.cholesky a with
  | None -> ()
  | Some _ -> Alcotest.fail "non-SPD accepted"

let prop_cholesky_solves_random_spd =
  QCheck.Test.make ~count:50 ~name:"cholesky solves random SPD systems"
    QCheck.(
      pair
        (array_of_size (QCheck.Gen.return 9) (float_range (-1.0) 1.0))
        (array_of_size (QCheck.Gen.return 3) (float_range (-5.0) 5.0)))
    (fun (m, b) ->
      (* A = M M^T + I is SPD *)
      let mm = Array.init 3 (fun i -> Array.init 3 (fun j -> m.((i * 3) + j))) in
      let a =
        Array.init 3 (fun i ->
            Array.init 3 (fun j ->
                let s = ref (if i = j then 1.0 else 0.0) in
                for k = 0 to 2 do
                  s := !s +. (mm.(i).(k) *. mm.(j).(k))
                done;
                !s))
      in
      match Autotune.La.cholesky a with
      | None -> false
      | Some l ->
        let x = Autotune.La.cholesky_solve l b in
        (* residual small *)
        let ok = ref true in
        for i = 0 to 2 do
          let r = ref (-.b.(i)) in
          for j = 0 to 2 do
            r := !r +. (a.(i).(j) *. x.(j))
          done;
          if Float.abs !r > 1e-6 then ok := false
        done;
        !ok)

(* ------------------------------------------------------------------ *)
(* GP                                                                  *)
(* ------------------------------------------------------------------ *)

let test_gp_interpolates () =
  let xs = [| [| 0.0 |]; [| 0.5 |]; [| 1.0 |] |] in
  let ys = [| 1.0; 0.0; 1.0 |] in
  match A.Gp.fit xs ys with
  | None -> Alcotest.fail "fit failed"
  | Some gp ->
    Array.iteri
      (fun i x ->
        let mu, _ = A.Gp.predict gp x in
        check (Alcotest.float 0.05) (Fmt.str "interp %d" i) ys.(i) mu)
      xs

let test_gp_uncertainty_grows_away_from_data () =
  let xs = [| [| 0.0 |]; [| 1.0 |] |] in
  let ys = [| 0.0; 1.0 |] in
  match A.Gp.fit xs ys with
  | None -> Alcotest.fail "fit failed"
  | Some gp ->
    let _, v_near = A.Gp.predict gp [| 0.01 |] in
    let _, v_far = A.Gp.predict gp [| 3.0 |] in
    check cb "variance grows" true (v_far > v_near)

let test_ei_nonnegative_and_peaks () =
  let xs = [| [| 0.0 |]; [| 1.0 |] |] in
  let ys = [| 1.0; 2.0 |] in
  match A.Gp.fit xs ys with
  | None -> Alcotest.fail "fit failed"
  | Some gp ->
    let best = 1.0 in
    List.iter
      (fun x ->
        let ei = A.Gp.expected_improvement gp ~best [| x |] in
        check cb (Fmt.str "EI(%g) >= 0" x) true (ei >= 0.0))
      [ 0.0; 0.25; 0.5; 2.0 ];
    (* far from data, EI must exceed EI at the known worst point *)
    let ei_unknown = A.Gp.expected_improvement gp ~best [| 5.0 |] in
    let ei_known_bad = A.Gp.expected_improvement gp ~best [| 1.0 |] in
    check cb "exploration valued" true (ei_unknown > ei_known_bad)

(* ------------------------------------------------------------------ *)
(* searches                                                            *)
(* ------------------------------------------------------------------ *)

(* synthetic objective: minimized at a=4, b=2 *)
let synth_objective p =
  let a = A.Space.get p "a" and b = A.Space.get p "b" in
  float_of_int (((a - 4) * (a - 4)) + ((b - 2) * (b - 2)))

let test_random_search_finds_optimum () =
  let s = small_space () in
  let r = A.Search.random_search ~seed:1 ~budget:40 s synth_objective in
  check cf "optimum found" 0.0 r.A.Search.best_objective

let test_bayesian_finds_optimum () =
  let s = small_space () in
  let r = A.Search.bayesian ~seed:1 ~budget:9 s synth_objective in
  check cf "optimum found within feasible budget" 0.0 r.A.Search.best_objective

let test_best_curve_monotone () =
  let s = small_space () in
  let r = A.Search.bayesian ~seed:2 ~budget:9 s synth_objective in
  let curve = A.Search.best_curve r in
  let rec mono = function
    | a :: (b :: _ as rest) -> a >= b && mono rest
    | _ -> true
  in
  check cb "best-so-far non-increasing" true (mono curve);
  check ci "curve length = evaluations" (List.length r.A.Search.history)
    (List.length curve)

let test_history_records_points () =
  let s = small_space () in
  let r = A.Search.random_search ~seed:3 ~budget:10 s synth_objective in
  List.iter
    (fun e ->
      check cb "objective consistent" true
        (e.A.Search.e_objective = synth_objective e.A.Search.e_point))
    r.A.Search.history

let () =
  Alcotest.run "autotune"
    [
      ( "space",
        [
          Alcotest.test_case "enumerate with constraints" `Quick
            test_space_enumerate;
          Alcotest.test_case "sampling feasible" `Quick
            test_space_sample_feasible;
          Alcotest.test_case "encoding" `Quick test_space_encode;
          Alcotest.test_case "divisors" `Quick test_divisors;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "cholesky solve" `Quick test_cholesky_solve;
          Alcotest.test_case "non-SPD rejected" `Quick
            test_cholesky_rejects_non_spd;
          QCheck_alcotest.to_alcotest prop_cholesky_solves_random_spd;
        ] );
      ( "gp",
        [
          Alcotest.test_case "interpolation" `Quick test_gp_interpolates;
          Alcotest.test_case "uncertainty" `Quick
            test_gp_uncertainty_grows_away_from_data;
          Alcotest.test_case "expected improvement" `Quick
            test_ei_nonnegative_and_peaks;
        ] );
      ( "search",
        [
          Alcotest.test_case "random finds optimum" `Quick
            test_random_search_finds_optimum;
          Alcotest.test_case "bayesian finds optimum" `Quick
            test_bayesian_finds_optimum;
          Alcotest.test_case "best curve monotone" `Quick
            test_best_curve_monotone;
          Alcotest.test_case "history consistent" `Quick
            test_history_records_points;
        ] );
    ]
