(* Static pre/post-condition checking of pipelines and scripts. *)

open Ir
module T = Transform

let _ctx = T.Register.full_context ()
let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let initial = Experiments.Table2.initial_opset

let final = [ Opset.dialect "llvm" ]

let passes names = List.map Passes.Pass.lookup_exn names

let test_naive_pipeline_flagged () =
  let r =
    T.Conditions.check_passes ~initial ~final
      (passes Workloads.Subview_kernel.naive_pipeline)
  in
  check cb "not ok" false (T.Conditions.ok r);
  check cb "leftover includes affine.apply" true
    (List.exists
       (function
         | T.Conditions.Leftover { remaining; _ } ->
           Opset.covers remaining (Opset.exact "affine.apply")
         | _ -> false)
       r.T.Conditions.problems)

let test_robust_pipeline_passes () =
  let r =
    T.Conditions.check_passes ~initial ~final
      (passes Workloads.Subview_kernel.robust_pipeline)
  in
  check cb "ok" true (T.Conditions.ok r)

let test_phase_ordering_violation () =
  (* licm (pre {scf.for}) after convert-scf-to-cf: vacuous *)
  let r =
    T.Conditions.check_passes ~initial ~final:[ Opset.dialect "llvm"; Opset.dialect "cf"; Opset.dialect "arith"; Opset.dialect "func"; Opset.dialect "memref"; Opset.exact "builtin.unrealized_conversion_cast" ]
      (passes [ "convert-scf-to-cf"; "licm" ])
  in
  check cb "vacuous step detected" true
    (List.exists
       (function
         | T.Conditions.Vacuous { step = "licm"; _ } -> true
         | _ -> false)
       r.T.Conditions.problems)

let test_correct_ordering_no_violation () =
  let r =
    T.Conditions.check_passes ~initial
      ~final:
        [ Opset.dialect "cf"; Opset.dialect "arith"; Opset.dialect "func";
          Opset.dialect "memref"; Opset.exact "builtin.unrealized_conversion_cast" ]
      (passes [ "licm"; "convert-scf-to-cf" ])
  in
  check cb "no problems" true (T.Conditions.ok r)

let test_trace_records_every_step () =
  let r =
    T.Conditions.check_passes ~initial ~final
      (passes Workloads.Subview_kernel.naive_pipeline)
  in
  check ci "7 trace entries" 7 (List.length r.T.Conditions.trace)

let test_constrained_subview_distinction () =
  (* finalize-memref-to-llvm consumes only the *constrained* subview; a
     plain memref.subview in the initial set must survive as leftover *)
  let r =
    T.Conditions.check_passes
      ~initial:[ Opset.exact "memref.subview" ]
      ~final
      (passes [ "finalize-memref-to-llvm" ])
  in
  check cb "plain subview leaks through" true
    (List.exists
       (function
         | T.Conditions.Leftover { remaining; _ } ->
           Opset.covers remaining (Opset.exact "memref.subview")
         | _ -> false)
       r.T.Conditions.problems)

let test_script_conditions () =
  (* a transform script built from the naive pipeline checks identically *)
  let script =
    T.From_pipeline.script_of_pipeline
      (passes Workloads.Subview_kernel.naive_pipeline)
  in
  let r = T.Conditions.check_script ~initial ~final script in
  check cb "script flagged too" false (T.Conditions.ok r)

let test_script_with_loop_transform_order () =
  (* loop_unroll after convert-scf-to-cf in a script: vacuous *)
  let script =
    T.Build.script (fun rw root ->
        let r2 =
          T.Build.apply_registered_pass rw ~pass_name:"convert-scf-to-cf" root
        in
        let loop = T.Build.match_op rw ~name:"scf.for" r2 in
        T.Build.loop_unroll_full rw loop)
  in
  let r =
    T.Conditions.check_script ~initial
      ~final:[ Opset.dialect "cf"; Opset.dialect "arith"; Opset.dialect "func";
               Opset.dialect "memref"; Opset.exact "builtin.unrealized_conversion_cast" ]
      script
  in
  check cb "ordering violation found" true
    (List.exists
       (function T.Conditions.Vacuous _ -> true | _ -> false)
       r.T.Conditions.problems)

let test_from_pipeline_roundtrip () =
  let ps = passes Workloads.Subview_kernel.naive_pipeline in
  let script = T.From_pipeline.script_of_pipeline ps in
  let back = T.From_pipeline.passes_of_script script in
  check ci "same length" (List.length ps) (List.length back);
  List.iter2
    (fun a b ->
      check Alcotest.string "same pass" a.Passes.Pass.name b.Passes.Pass.name)
    ps back

let () =
  Alcotest.run "conditions"
    [
      ( "pipelines",
        [
          Alcotest.test_case "naive flagged" `Quick test_naive_pipeline_flagged;
          Alcotest.test_case "robust passes" `Quick test_robust_pipeline_passes;
          Alcotest.test_case "phase-ordering violation" `Quick
            test_phase_ordering_violation;
          Alcotest.test_case "correct ordering" `Quick
            test_correct_ordering_no_violation;
          Alcotest.test_case "trace complete" `Quick
            test_trace_records_every_step;
          Alcotest.test_case "constrained subview distinction" `Quick
            test_constrained_subview_distinction;
        ] );
      ( "scripts",
        [
          Alcotest.test_case "script conditions" `Quick test_script_conditions;
          Alcotest.test_case "loop transform ordering" `Quick
            test_script_with_loop_transform_order;
          Alcotest.test_case "pipeline<->script round-trip" `Quick
            test_from_pipeline_roundtrip;
        ] );
    ]
