(* Experiments: small-scale end-to-end checks that each case study
   reproduces the paper's qualitative result. *)

module E = Experiments

let ctx = Transform.Register.full_context ()
let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Table 2 / Case Study 2                                              *)
(* ------------------------------------------------------------------ *)

let test_table2_outcomes () =
  let o = E.Table2.run ctx in
  check cb "naive statically flagged" false
    (Transform.Conditions.ok o.E.Table2.naive_static);
  check cb "robust statically clean" true
    (Transform.Conditions.ok o.E.Table2.robust_static);
  check cb "naive+static runs" true
    (Result.is_ok o.E.Table2.naive_dynamic_static_offset);
  check cb "naive+dynamic fails" true
    (Result.is_error o.E.Table2.naive_dynamic_dynamic_offset);
  check cb "robust+dynamic runs" true
    (Result.is_ok o.E.Table2.robust_dynamic_dynamic_offset)

(* ------------------------------------------------------------------ *)
(* Case Study 3                                                        *)
(* ------------------------------------------------------------------ *)

let test_cs3_finds_culprit () =
  let o = E.Cs3.run ctx in
  check Alcotest.string "culprit identified"
    Dialects.Shlo_patterns.culprit o.E.Cs3.culprit;
  check cb "full set regresses" true
    (o.E.Cs3.full_estimate > o.E.Cs3.baseline_estimate);
  check cb "regression is single-digit-ish percent" true
    (let pct =
       (o.E.Cs3.full_estimate -. o.E.Cs3.baseline_estimate)
       /. o.E.Cs3.baseline_estimate *. 100.
     in
     pct > 2.0 && pct < 25.0);
  check cb "fixed set improves over baseline" true
    (o.E.Cs3.fixed_estimate < o.E.Cs3.baseline_estimate);
  check cb "few probes (binary search)" true (List.length o.E.Cs3.probes <= 9);
  check cb "probing much cheaper than rebuilds" true
    (o.E.Cs3.transform_total_s *. 10.0 < o.E.Cs3.rebuild_total_estimate_s)

(* ------------------------------------------------------------------ *)
(* Case Study 4                                                        *)
(* ------------------------------------------------------------------ *)

let test_cs4_shape () =
  let o = E.Cs4.run ctx in
  List.iter
    (fun v ->
      check cb (v.E.Cs4.v_name ^ " correct") true v.E.Cs4.v_correct)
    o.E.Cs4.variants;
  let time name =
    (List.find (fun v -> v.E.Cs4.v_name = name) o.E.Cs4.variants)
      .E.Cs4.v_seconds
  in
  let openmp = time "OpenMP-style tiling" in
  let transform = time "Transform split+tile" in
  (* the paper: OpenMP and Transform versions nearly identical *)
  check cb "openmp ~ transform (within 5%)" true
    (Float.abs (openmp -. transform) /. openmp < 0.05);
  (* the paper: microkernel > 20x faster *)
  check cb "microkernel speedup > 20x" true (o.E.Cs4.speedup_microkernel > 20.0)

(* ------------------------------------------------------------------ *)
(* Case Study 5                                                        *)
(* ------------------------------------------------------------------ *)

let test_cs5_autotuning_improves () =
  let o = E.Cs5.run ~budget:10 ctx in
  check cb "autotuned beats default" true (o.E.Cs5.speedup > 1.2);
  let curve = Autotune.Search.best_curve o.E.Cs5.result in
  let rec mono = function
    | a :: (b :: _ as rest) -> a >= b && mono rest
    | _ -> true
  in
  check cb "evolution monotone" true (mono curve)

let test_cs5_structured_extension () =
  let o = E.Cs5_structured.run ~budget:8 ctx in
  (* the optimizer must discover that the microkernel dominates *)
  check cb "best uses the microkernel" true o.E.Cs5_structured.best_uses_library;
  check cb "best beats every loops-only point" true
    (o.E.Cs5_structured.result.Autotune.Search.best_objective
    < o.E.Cs5_structured.loops_only_best)

let test_cs5_constraint_respected () =
  let space = E.Cs5.space () in
  List.iter
    (fun pt ->
      let c = E.Cs5.config_of_point pt in
      check cb "vectorize implies divisible tile_j" true
        ((not c.E.Cs5.vectorize) || c.E.Cs5.tj mod E.Cs5.vector_width = 0))
    (Autotune.Space.enumerate space)

(* ------------------------------------------------------------------ *)
(* Section 3.4                                                         *)
(* ------------------------------------------------------------------ *)

let test_s34_add_kinds () =
  let rows = E.S34.run ctx in
  check ci "three placements" 3 (List.length rows);
  List.iter
    (fun r ->
      (* the gradient adds in the final payload must carry the marker and
         be of a single kind *)
      check cb
        (r.E.S34.level_name ^ " produced gradients")
        true
        (r.E.S34.gradient_adds <> []))
    rows;
  let llvm_row = List.nth rows 2 in
  check cb "LLVM-level grads are llvm.fadd" true
    (List.mem_assoc "llvm.fadd" llvm_row.E.S34.gradient_adds)

(* ------------------------------------------------------------------ *)
(* ablations                                                           *)
(* ------------------------------------------------------------------ *)

let test_ablations_all_ok () =
  let rows = E.Ablations.run ctx in
  List.iter
    (fun r -> check cb (r.E.Ablations.config ^ " ok") true r.E.Ablations.ok)
    rows;
  let steps name =
    (List.find (fun r -> r.E.Ablations.config = name) rows).E.Ablations.steps
  in
  check cb "simplification reduces interpreter steps" true
    (steps "simplified script" < steps "no simplification")

(* ------------------------------------------------------------------ *)
(* Table 1 (tiny reps to stay fast)                                    *)
(* ------------------------------------------------------------------ *)

let test_table1_runs () =
  let rows = E.Table1.run ~reps:1 ctx in
  check ci "five models" 5 (List.length rows);
  List.iter
    (fun r ->
      check cb (r.E.Table1.model ^ " compiled both ways") true
        (r.E.Table1.pm_seconds > 0.0 && r.E.Table1.tf_seconds > 0.0);
      (* the comparison premise: both paths produce the same final IR *)
      check cb (r.E.Table1.model ^ " identical IR") true r.E.Table1.identical_ir)
    rows

let () =
  Alcotest.run "experiments"
    [
      ("table2", [ Alcotest.test_case "outcomes" `Quick test_table2_outcomes ]);
      ( "cs3",
        [ Alcotest.test_case "binary search finds culprit" `Slow test_cs3_finds_culprit ] );
      ("cs4", [ Alcotest.test_case "performance shape" `Slow test_cs4_shape ]);
      ( "cs5",
        [
          Alcotest.test_case "autotuning improves" `Slow
            test_cs5_autotuning_improves;
          Alcotest.test_case "constraints respected" `Quick
            test_cs5_constraint_respected;
          Alcotest.test_case "structured extension" `Slow
            test_cs5_structured_extension;
        ] );
      ("s34", [ Alcotest.test_case "AD add kinds" `Quick test_s34_add_kinds ]);
      ( "ablations",
        [ Alcotest.test_case "all configurations ok" `Quick test_ablations_all_ok ] );
      ("table1", [ Alcotest.test_case "runs" `Slow test_table1_runs ]);
    ]
