(* Verifier: structural invariants, dominance, terminators, symbols. *)

open Ir
open Dialects

let ctx = Transform.Register.full_context ()

let expect_ok m =
  match Verifier.verify ctx m with
  | Ok () -> ()
  | Error ds ->
    Alcotest.failf "unexpected diagnostics: %a"
      (Fmt.list ~sep:Fmt.comma Diag.pp)
      ds

let expect_error ~containing m =
  match Verifier.verify ctx m with
  | Ok () -> Alcotest.failf "expected error containing %S" containing
  | Error ds ->
    let all = Fmt.str "%a" (Fmt.list ~sep:Fmt.comma Diag.pp) ds in
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      m = 0 || go 0
    in
    if not (contains all containing) then
      Alcotest.failf "diagnostics %S do not mention %S" all containing

let parse src =
  match Parser.parse_module src with
  | Ok m -> m
  | Error e -> Alcotest.failf "parse: %s" e

let test_valid_module () =
  expect_ok
    (parse
       {|"func.func"() ({
^bb0(%a: i32):
  %0 = "arith.addi"(%a, %a) : (i32, i32) -> i32
  "func.return"(%0) : (i32) -> ()
}) {sym_name = "f", function_type = (i32) -> i32} : () -> ()|})

let test_missing_terminator () =
  expect_error ~containing:"terminator"
    (parse
       {|"func.func"() ({
^bb0(%a: i32):
  %0 = "arith.addi"(%a, %a) : (i32, i32) -> i32
}) {sym_name = "f", function_type = (i32) -> i32} : () -> ()|})

let test_terminator_in_middle () =
  (* build directly: return before another op *)
  let f, entry = Func.create ~name:"f" ~arg_types:[] ~result_types:[] () in
  let rw = Dutil.rw_at_end entry in
  Func.return rw ();
  ignore (Dutil.const_int rw 1);
  let md = Builtin.create_module () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  expect_error ~containing:"terminator" md

let test_wrong_operand_count () =
  expect_error ~containing:"expected 2 operands"
    (parse
       {|"func.func"() ({
^bb0(%a: i32):
  %0 = "arith.addi"(%a) : (i32) -> i32
  "func.return"(%0) : (i32) -> ()
}) {sym_name = "f", function_type = (i32) -> i32} : () -> ()|})

let test_same_type_trait () =
  expect_error ~containing:"same type"
    (parse
       {|"func.func"() ({
^bb0(%a: i32, %b: f32):
  %0 = "arith.addi"(%a, %b) : (i32, f32) -> i32
  "func.return"(%0) : (i32) -> ()
}) {sym_name = "f", function_type = (i32, f32) -> i32} : () -> ()|})

let test_missing_attr () =
  expect_error ~containing:"missing required attribute"
    (parse
       {|"func.func"() ({
^bb0(%a: i32):
  %0 = "arith.cmpi"(%a, %a) : (i32, i32) -> i1
  "func.return"() : () -> ()
}) {sym_name = "f", function_type = (i32) -> ()} : () -> ()|})

let test_unregistered_rejected () =
  let strict = Dialects.Registry.context () in
  let m = parse {|"nosuch.op"() : () -> ()|} in
  (match Verifier.verify strict m with
  | Ok () -> Alcotest.fail "expected unregistered error"
  | Error _ -> ());
  let lax = Dialects.Registry.context ~allow_unregistered:true () in
  match Verifier.verify lax m with
  | Ok () -> ()
  | Error ds ->
    Alcotest.failf "lax context rejected: %a"
      (Fmt.list ~sep:Fmt.comma Diag.pp)
      ds

let test_dominance_straightline () =
  (* use before def in the same block *)
  let b = Ircore.create_block () in
  let def = Ircore.create ~result_types:[ Typ.i32 ] "arith.constant" in
  Ircore.set_attr def "value" (Attr.int 1);
  let use =
    Ircore.create ~operands:[ Ircore.result def ] ~result_types:[ Typ.i32 ]
      "arith.addi"
  in
  Ircore.set_operands use [ Ircore.result def; Ircore.result def ];
  Ircore.insert_at_end b use;
  Ircore.insert_at_end b def;
  Ircore.insert_at_end b (Ircore.create "func.return");
  let f =
    Ircore.create
      ~regions:[ Ircore.region_with_block b ]
      ~attrs:
        [
          ("sym_name", Attr.str "f");
          ("function_type", Attr.typ (Typ.Func ([], [])));
        ]
      "func.func"
  in
  let md = Builtin.create_module () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  expect_error ~containing:"dominate" md

let test_dominance_cfg () =
  (* value defined in one successor used in the sibling branch *)
  expect_error ~containing:"dominate"
    (parse
       {|"func.func"() ({
^bb0(%c: i1):
  "cf.cond_br"(%c)[^bb1, ^bb2] : (i1) -> ()
^bb1:
  %x = "arith.constant"() {value = 1 : i32} : () -> i32
  "cf.br"()[^bb3] : () -> ()
^bb2:
  %y = "arith.addi"(%x, %x) : (i32, i32) -> i32
  "cf.br"()[^bb3] : () -> ()
^bb3:
  "func.return"() : () -> ()
}) {sym_name = "f", function_type = (i1) -> ()} : () -> ()|})

let test_dominance_cfg_ok () =
  (* def dominates both uses through a diamond *)
  expect_ok
    (parse
       {|"func.func"() ({
^bb0(%c: i1):
  %x = "arith.constant"() {value = 1 : i32} : () -> i32
  "cf.cond_br"(%c)[^bb1, ^bb2] : (i1) -> ()
^bb1:
  %a = "arith.addi"(%x, %x) : (i32, i32) -> i32
  "cf.br"()[^bb3] : () -> ()
^bb2:
  %b = "arith.addi"(%x, %x) : (i32, i32) -> i32
  "cf.br"()[^bb3] : () -> ()
^bb3:
  "func.return"() : () -> ()
}) {sym_name = "f", function_type = (i1) -> ()} : () -> ()|})

let test_nested_region_uses_outer () =
  (* outer value used in a nested loop body: fine *)
  expect_ok
    (parse
       {|"func.func"() ({
^bb0:
  %c0 = "arith.constant"() {value = 0 : index} : () -> index
  %c4 = "arith.constant"() {value = 4 : index} : () -> index
  %c1 = "arith.constant"() {value = 1 : index} : () -> index
  "scf.for"(%c0, %c4, %c1) ({
  ^bb1(%i: index):
    %s = "arith.addi"(%i, %c1) : (index, index) -> index
    "scf.yield"() : () -> ()
  }) : (index, index, index) -> ()
  "func.return"() : () -> ()
}) {sym_name = "f", function_type = () -> ()} : () -> ()|})

let test_symbol_redefinition () =
  let md = Builtin.create_module () in
  let f1, e1 = Func.create ~name:"dup" ~arg_types:[] ~result_types:[] () in
  Func.return (Dutil.rw_at_end e1) ();
  let f2, e2 = Func.create ~name:"dup" ~arg_types:[] ~result_types:[] () in
  Func.return (Dutil.rw_at_end e2) ();
  Ircore.insert_at_end (Builtin.body_block md) f1;
  Ircore.insert_at_end (Builtin.body_block md) f2;
  expect_error ~containing:"redefinition of symbol" md

let test_successor_on_non_terminator () =
  expect_error ~containing:"terminator"
    (parse
       {|"func.func"() ({
^bb0:
  "arith.constant"()[^bb1] {value = 1 : i32} : () -> ()
^bb1:
  "func.return"() : () -> ()
}) {sym_name = "f", function_type = () -> ()} : () -> ()|})

let () =
  Alcotest.run "verifier"
    [
      ( "structure",
        [
          Alcotest.test_case "valid module" `Quick test_valid_module;
          Alcotest.test_case "missing terminator" `Quick test_missing_terminator;
          Alcotest.test_case "terminator not last" `Quick
            test_terminator_in_middle;
          Alcotest.test_case "wrong operand count" `Quick
            test_wrong_operand_count;
          Alcotest.test_case "same-type trait" `Quick test_same_type_trait;
          Alcotest.test_case "missing attribute" `Quick test_missing_attr;
          Alcotest.test_case "unregistered ops" `Quick test_unregistered_rejected;
          Alcotest.test_case "successors need terminators" `Quick
            test_successor_on_non_terminator;
        ] );
      ( "dominance",
        [
          Alcotest.test_case "use before def" `Quick test_dominance_straightline;
          Alcotest.test_case "sibling branch use" `Quick test_dominance_cfg;
          Alcotest.test_case "diamond ok" `Quick test_dominance_cfg_ok;
          Alcotest.test_case "nested region uses outer" `Quick
            test_nested_region_uses_outer;
        ] );
      ( "symbols",
        [ Alcotest.test_case "redefinition" `Quick test_symbol_redefinition ] );
    ]
