(* Pretty (custom-assembly) printing. Output-only sugar: these tests check
   the rendered text and that the generic printer still round-trips. *)

open Ir

let ctx = Transform.Register.full_context ()

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_has s what sub =
  Alcotest.(check bool) (what ^ ": " ^ sub) true (contains s sub)

let check_not s what sub =
  Alcotest.(check bool) (what ^ " lacks " ^ sub) false (contains s sub)

let test_matmul_pretty () =
  let md = Workloads.Matmul.build_module ~m:8 ~n:8 ~k:4 () in
  let s = Pretty.to_string md in
  check_has s "module" "module {";
  check_has s "func header" "func.func @matmul(";
  check_has s "for" "scf.for ";
  check_has s "step" " step ";
  check_has s "load" "memref.load ";
  check_has s "store" "memref.store ";
  check_has s "mulf" " = arith.mulf ";
  check_has s "return" "return";
  (* sugar must not leak generic syntax for the sugared ops *)
  check_not s "pretty" "\"scf.for\"";
  check_not s "pretty" "\"arith.mulf\"";
  (* empty yields elided *)
  check_not s "pretty" "scf.yield"

let test_iter_args_rendered () =
  let open Dialects in
  let md = Builtin.create_module () in
  let f, entry = Func.create ~name:"k" ~arg_types:[] ~result_types:[ Typ.f32 ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let zero = Dutil.const_int rw 0 in
  let one = Dutil.const_int rw 1 in
  let ub = Dutil.const_int rw 4 in
  let init = Dutil.const_float rw 0.0 in
  let loop =
    Scf.build_for rw ~lb:zero ~ub ~step:one ~iter_args:[ init ]
      (fun brw _ iters -> [ Arith.addf brw (List.hd iters) (List.hd iters) ])
  in
  Func.return rw ~operands:[ Ircore.result loop ] ();
  let s = Pretty.to_string md in
  check_has s "iter_args" "iter_args(";
  check_has s "loop results bound" " = scf.for ";
  check_has s "yield with operands" "scf.yield "

let test_unknown_ops_fall_back_to_generic () =
  let md =
    match
      Parser.parse_module
        {|"test.unknown"() {x = 1 : i64} : () -> ()|}
    with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let s = Pretty.to_string md in
  check_has s "generic fallback" "\"test.unknown\"()"

let test_cfg_blocks_labeled () =
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  (match (Passes.Pass.lookup_exn "convert-scf-to-cf").Passes.Pass.run ctx md with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Diag.to_string e));
  let s = Pretty.to_string md in
  check_has s "block labels" "^bb";
  check_has s "branch sugar" "cf.br ^"

let test_pretty_does_not_mutate () =
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  let generic_before = Printer.op_to_string md in
  ignore (Pretty.to_string md);
  Alcotest.(check string) "generic unchanged" generic_before
    (Printer.op_to_string md)

let () =
  Alcotest.run "pretty"
    [
      ( "rendering",
        [
          Alcotest.test_case "matmul module" `Quick test_matmul_pretty;
          Alcotest.test_case "iter_args" `Quick test_iter_args_rendered;
          Alcotest.test_case "generic fallback" `Quick
            test_unknown_ops_fall_back_to_generic;
          Alcotest.test_case "CFG blocks" `Quick test_cfg_blocks_labeled;
          Alcotest.test_case "printing is pure" `Quick
            test_pretty_does_not_mutate;
        ] );
    ]
