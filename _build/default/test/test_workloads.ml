(* Workload generators: model op counts, LLM structure, CS2 kernels. *)

open Ir

let ctx = Transform.Register.full_context ()
let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let test_model_op_counts_exact () =
  List.iter
    (fun spec ->
      let md = Workloads.Models.build spec in
      check ci
        (Fmt.str "%s op count" spec.Workloads.Models.sp_name)
        spec.Workloads.Models.sp_ops
        (Workloads.Models.count_ops md))
    Workloads.Models.paper_models

let test_models_verify () =
  List.iter
    (fun spec ->
      let md = Workloads.Models.build spec in
      match Verifier.verify ctx md with
      | Ok () -> ()
      | Error ds ->
        Alcotest.failf "%s: %a" spec.Workloads.Models.sp_name
          (Fmt.list ~sep:Fmt.comma Diag.pp)
          ds)
    Workloads.Models.paper_models

let test_models_use_realistic_op_mix () =
  let md =
    Workloads.Models.build
      (List.find
         (fun s -> s.Workloads.Models.sp_name = "gpt2")
         Workloads.Models.paper_models)
  in
  let has name = Symbol.collect_ops ~op_name:name md <> [] in
  check cb "matmuls" true (has "tosa.matmul");
  check cb "softmax exp" true (has "tosa.exp");
  check cb "layernorm rsqrt" true (has "tosa.rsqrt");
  check cb "fully_connected" true (has "tosa.fully_connected");
  let md2 =
    Workloads.Models.build
      (List.find
         (fun s -> s.Workloads.Models.sp_name = "squeezenet")
         Workloads.Models.paper_models)
  in
  check cb "convs in squeezenet" true
    (Symbol.collect_ops ~op_name:"tosa.conv2d" md2 <> [])

let test_llm_structure () =
  let md = Workloads.Llm.build ~layers:3 () in
  (match Verifier.verify ctx md with
  | Ok () -> ()
  | Error ds ->
    Alcotest.failf "%a" (Fmt.list ~sep:Fmt.comma Diag.pp) ds);
  let count name = List.length (Symbol.collect_ops ~op_name:name md) in
  check ci "one pad per layer" 3 (count "shlo.pad");
  check cb "dots present" true (count "shlo.dot_general" >= 3 * 4);
  check ci "two reduces per layer (softmax + stat)" 6 (count "shlo.reduce");
  check cb "transposes present" true (count "shlo.transpose" > 0)

let test_subview_kernels_verify () =
  List.iter
    (fun v ->
      let md = Workloads.Subview_kernel.build v in
      match Verifier.verify ctx md with
      | Ok () -> ()
      | Error ds ->
        Alcotest.failf "%a" (Fmt.list ~sep:Fmt.comma Diag.pp) ds)
    [ Workloads.Subview_kernel.Static_offset; Workloads.Subview_kernel.Dynamic_offset ]

let test_matmul_reference () =
  (* 2x2 identity sanity *)
  let machine = Interp.Machine.create () in
  let a = Workloads.Matmul.make_matrix machine ~rows:2 ~cols:2 ~seed:1 in
  a.Interp.Rvalue.buf.Interp.Rvalue.data.(0) <- 1.0;
  a.Interp.Rvalue.buf.Interp.Rvalue.data.(1) <- 0.0;
  a.Interp.Rvalue.buf.Interp.Rvalue.data.(2) <- 0.0;
  a.Interp.Rvalue.buf.Interp.Rvalue.data.(3) <- 1.0;
  let b = Workloads.Matmul.make_matrix machine ~rows:2 ~cols:2 ~seed:2 in
  let c0 = [| 0.0; 0.0; 0.0; 0.0 |] in
  let r = Workloads.Matmul.reference ~m:2 ~n:2 ~k:2 a b c0 in
  check cb "identity matmul" true
    (Workloads.Matmul.max_abs_diff r b.Interp.Rvalue.buf.Interp.Rvalue.data < 1e-9)

let test_matmul_orders_agree () =
  let m, n, k = (6, 8, 4) in
  let run order =
    let md = Workloads.Matmul.build_module ~order ~m ~n ~k () in
    match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
    | Ok (_, _, _, c_out, _) -> Array.copy c_out
    | Error e -> Alcotest.fail e
  in
  let ijk = run Workloads.Matmul.Ijk in
  let ikj = run Workloads.Matmul.Ikj in
  check cb "loop orders agree" true
    (Workloads.Matmul.max_abs_diff ijk ikj < 1e-4)

let test_deterministic_fill () =
  let a = Array.make 16 0.0 and b = Array.make 16 0.0 in
  Workloads.Matmul.fill_deterministic a ~seed:9;
  Workloads.Matmul.fill_deterministic b ~seed:9;
  check cb "same seed same data" true (a = b);
  Workloads.Matmul.fill_deterministic b ~seed:10;
  check cb "different seed differs" true (a <> b);
  check cb "values bounded" true
    (Array.for_all (fun x -> x >= -1.0 && x <= 1.0) a)

let () =
  Alcotest.run "workloads"
    [
      ( "models",
        [
          Alcotest.test_case "exact op counts (Table 1)" `Quick
            test_model_op_counts_exact;
          Alcotest.test_case "verify" `Quick test_models_verify;
          Alcotest.test_case "realistic op mix" `Quick
            test_models_use_realistic_op_mix;
        ] );
      ( "llm",
        [ Alcotest.test_case "structure + motifs" `Quick test_llm_structure ] );
      ( "subview",
        [ Alcotest.test_case "kernels verify" `Quick test_subview_kernels_verify ] );
      ( "matmul",
        [
          Alcotest.test_case "reference sanity" `Quick test_matmul_reference;
          Alcotest.test_case "loop orders agree" `Quick test_matmul_orders_agree;
          Alcotest.test_case "deterministic fill" `Quick test_deterministic_fill;
        ] );
    ]
