(* Static handle-invalidation (use-after-consume) analysis. *)

module T = Transform

let _ctx = T.Register.full_context ()
let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let diags script = T.Invalidation.analyze script

let test_clean_script () =
  let script =
    T.Build.script (fun rw root ->
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        let main, rest = T.Build.loop_split rw ~div_by:8 loop in
        ignore (T.Build.loop_tile rw ~sizes:[ 8 ] main);
        T.Build.loop_unroll_full rw rest)
  in
  check ci "no diagnostics" 0 (List.length (diags script))

let test_double_unroll () =
  let script =
    T.Build.script (fun rw root ->
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        let _m, rest = T.Build.loop_split rw ~div_by:8 loop in
        T.Build.loop_unroll_full rw rest;
        T.Build.loop_unroll_full rw rest)
  in
  let ds = diags script in
  check ci "one diagnostic" 1 (List.length ds);
  let d = List.hd ds in
  check Alcotest.string "consumer identified" "transform.loop_unroll"
    d.T.Invalidation.d_consumed_by

let test_use_of_consumed_by_other_transform () =
  let script =
    T.Build.script (fun rw root ->
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        ignore (T.Build.loop_tile rw ~sizes:[ 4 ] loop);
        (* loop was consumed by tile *)
        T.Build.loop_unroll_full rw loop)
  in
  let ds = diags script in
  check ci "one diagnostic" 1 (List.length ds);
  check Alcotest.string "consumer is tile" "transform.loop_tile"
    (List.hd ds).T.Invalidation.d_consumed_by

let test_derived_handle_aliasing () =
  (* consuming the outer loop invalidates the handle matched inside it *)
  let script =
    T.Build.script (fun rw root ->
        let outer = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        let inner = T.Build.match_op rw ~select:"first" ~name:"scf.for" outer in
        ignore (T.Build.loop_tile rw ~sizes:[ 4 ] outer);
        T.Build.loop_unroll_full rw inner)
  in
  check ci "aliased use detected" 1 (List.length (diags script))

let test_sibling_handles_independent () =
  (* consuming one matched handle must not invalidate unrelated ones *)
  let script =
    T.Build.script (fun rw root ->
        let l1 = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        let l2 = T.Build.match_op rw ~select:"second" ~name:"scf.for" root in
        ignore (T.Build.loop_tile rw ~sizes:[ 4 ] l2);
        ignore (T.Build.loop_hoist rw l1))
  in
  (* NOTE: our static aliasing is conservative per derivation edges; l1 and
     l2 are both derived from root, but consuming l2 does not consume root,
     so l1 stays valid *)
  check ci "no false positive" 0 (List.length (diags script))

let test_nonconsuming_transforms_safe () =
  let script =
    T.Build.script (fun rw root ->
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        ignore (T.Build.loop_hoist rw loop);
        ignore (T.Build.loop_hoist rw loop);
        T.Build.print rw loop)
  in
  check ci "hoist/print do not consume" 0 (List.length (diags script))

let test_results_of_consuming_transform_fresh () =
  (* split consumes its operand but its results are fresh handles *)
  let script =
    T.Build.script (fun rw root ->
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        let main, rest = T.Build.loop_split rw ~div_by:8 loop in
        ignore (T.Build.loop_tile rw ~sizes:[ 4 ] main);
        T.Build.loop_unroll_full rw rest)
  in
  check ci "fresh results usable" 0 (List.length (diags script))

let test_diag_formatting () =
  let script =
    T.Build.script (fun rw root ->
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        ignore (T.Build.loop_tile rw ~sizes:[ 4 ] loop);
        T.Build.loop_unroll_full rw loop)
  in
  match diags script with
  | [ d ] ->
    let s = Fmt.str "%a" T.Invalidation.pp_diagnostic d in
    check cb "message meaningful" true (String.length s > 20)
  | _ -> Alcotest.fail "expected one diagnostic"

let () =
  Alcotest.run "invalidation"
    [
      ( "analysis",
        [
          Alcotest.test_case "clean script" `Quick test_clean_script;
          Alcotest.test_case "double unroll (Fig 1a:11)" `Quick
            test_double_unroll;
          Alcotest.test_case "consumed by another transform" `Quick
            test_use_of_consumed_by_other_transform;
          Alcotest.test_case "derived handle aliasing" `Quick
            test_derived_handle_aliasing;
          Alcotest.test_case "siblings independent" `Quick
            test_sibling_handles_independent;
          Alcotest.test_case "non-consuming safe" `Quick
            test_nonconsuming_transforms_safe;
          Alcotest.test_case "consumer results fresh" `Quick
            test_results_of_consuming_transform_fresh;
          Alcotest.test_case "diagnostic formatting" `Quick test_diag_formatting;
        ] );
    ]
