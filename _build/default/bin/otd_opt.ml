(** otd-opt: the mlir-opt analogue of this repository.

    Reads a module in generic textual form, optionally verifies it, runs a
    comma-separated pass pipeline and/or a Transform script (from a separate
    file or embedded in the same module as a [@__transform_main] named
    sequence), and prints the result. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run input pipeline transform_file no_verify list_passes print_steps pretty =
  let ctx = Transform.Register.full_context () in
  if list_passes then begin
    List.iter
      (fun p ->
        Fmt.pr "%-32s %s@." p.Passes.Pass.name p.Passes.Pass.summary)
      (Passes.Pass.all_registered ());
    `Ok ()
  end
  else
    match input with
    | None -> `Error (false, "missing input file")
    | Some path -> (
      let src = if path = "-" then In_channel.input_all stdin else read_file path in
      match Ir.Parser.parse_module src with
      | Error e -> `Error (false, Fmt.str "parse error: %s" e)
      | Ok m -> (
        let verify () =
          if no_verify then Ok ()
          else
            match Ir.Verifier.verify ctx m with
            | Ok () -> Ok ()
            | Error diags ->
              Error
                (Fmt.str "%a"
                   (Fmt.list ~sep:Fmt.cut Ir.Verifier.pp_diagnostic)
                   diags)
        in
        let apply_pipeline () =
          match pipeline with
          | None -> Ok ()
          | Some str -> (
            match Passes.Pass.parse_pipeline str with
            | Error e -> Error e
            | Ok passes -> (
              try
                let result = Passes.Pass.run_pipeline ctx passes m in
                if print_steps then
                  List.iter
                    (fun t ->
                      Fmt.epr "// pass %s: %.2f ms@." t.Passes.Pass.t_pass
                        (t.Passes.Pass.t_seconds *. 1000.))
                    result.Passes.Pass.timings;
                Ok ()
              with Passes.Pass.Pass_error (p, msg) ->
                Error (Fmt.str "pass %s failed: %s" p msg)))
        in
        let apply_transform () =
          match transform_file with
          | None -> Ok ()
          | Some tf -> (
            match Ir.Parser.parse_module (read_file tf) with
            | Error e -> Error (Fmt.str "transform script parse error: %s" e)
            | Ok script -> (
              match Transform.Interp.apply ctx ~script ~payload:m with
              | Ok steps ->
                if print_steps then
                  Fmt.epr "// transform interpreter: %d steps@." steps;
                Ok ()
              | Error e -> Error (Transform.Terror.to_string e)))
        in
        match
          Result.bind (verify ()) (fun () ->
              Result.bind (apply_pipeline ()) (fun () ->
                  Result.bind (apply_transform ()) verify))
        with
        | Error e -> `Error (false, e)
        | Ok () ->
          if pretty then Fmt.pr "%a@." Ir.Pretty.pp m
          else Fmt.pr "%a@." Ir.Printer.pp_op m;
          `Ok ()))

let input =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Input module ('-' for stdin).")

let pipeline =
  Arg.(
    value
    & opt (some string) None
    & info [ "pass-pipeline"; "p" ] ~docv:"PASSES"
        ~doc:"Comma-separated pass pipeline to run.")

let transform_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "transform" ] ~docv:"FILE"
        ~doc:"Transform script to interpret against the payload.")

let no_verify =
  Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip IR verification.")

let list_passes =
  Arg.(value & flag & info [ "list-passes" ] ~doc:"List registered passes.")

let print_steps =
  Arg.(value & flag & info [ "timing" ] ~doc:"Print per-pass timing / interpreter steps.")

let pretty =
  Arg.(
    value & flag
    & info [ "pretty" ]
        ~doc:"Print custom assembly for common dialects (output only; the \
              parser consumes the generic form).")

let cmd =
  let doc = "optimizer driver for the OCaml Transform-dialect reproduction" in
  Cmd.v
    (Cmd.info "otd-opt" ~doc)
    Term.(
      ret
        (const run $ input $ pipeline $ transform_file $ no_verify $ list_passes
       $ print_steps $ pretty))

let () = exit (Cmd.eval cmd)
