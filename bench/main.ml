(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4) on this repository's substrates, then runs a
   Bechamel micro-benchmark per experiment kernel.

   Usage:  dune exec bench/main.exe            (all sections)
           dune exec bench/main.exe -- table1  (one section)
           dune exec bench/main.exe -- --no-micro  (skip Bechamel) *)

let ctx = Transform.Register.full_context ()

(* bulky non-report artifacts (lowered models, journals, reproducers) live
   under the gitignored _artifacts/; the BENCH_*.json reports stay at the
   repository root where CI collects them *)
let artifacts_dir () =
  (try Sys.mkdir "_artifacts" 0o755 with Sys_error _ -> ());
  "_artifacts"

let banner title paper =
  Fmt.pr "@.============================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "  (paper: %s)@." paper;
  Fmt.pr "============================================================@."

(* ------------------------------------------------------------------ *)
(* sections                                                            *)
(* ------------------------------------------------------------------ *)

let table1 () =
  banner "E1 - Table 1: compile-time overhead of the Transform dialect"
    "five ML models, pass manager vs transform interpreter, <= 2.6% overhead";
  let rows = Experiments.Table1.run ~reps:7 ctx in
  Experiments.Table1.pp_table Fmt.stdout rows;
  let max_overhead =
    List.fold_left
      (fun acc r -> Float.max acc r.Experiments.Table1.overhead_pct)
      0.0 rows
  in
  Fmt.pr "max overhead measured: %.1f%%@." max_overhead;
  rows

let fig6 rows =
  banner "E2 - Figure 6: compile time per model, MLIR vs Transform"
    "bar chart of the Table 1 data";
  Experiments.Table1.pp_figure Fmt.stdout rows

let table2 () =
  banner "E3 - Table 2 / Case Study 2: pre/post-conditions + static checking"
    "naive pipeline statically flagged (leftover affine.apply); robust passes";
  Experiments.Table2.pp_conditions Fmt.stdout ();
  Fmt.pr "@.";
  let o = Experiments.Table2.run ctx in
  Experiments.Table2.pp_outcome Fmt.stdout o

let cs3 () =
  banner "E4 - Case Study 3: hunting the counterproductive pattern"
    "binary search over ~20 patterns; 4s/probe vs ~195s/rebuild; ~9% regression";
  let o = Experiments.Cs3.run ctx in
  Experiments.Cs3.pp_outcome Fmt.stdout o

let cs4 () =
  banner "E5 - Case Study 4 / Figures 7-8: fine-grained loop control"
    "OpenMP ~ Transform (0.48s vs 0.49s); microkernel 0.017s (~28x)";
  let o = Experiments.Cs4.run ctx in
  Experiments.Cs4.pp_outcome Fmt.stdout o

let cs5 () =
  banner "E6 - Case Study 5 / Figures 9-11: autotuning the Transform script"
    "BaCO-style Bayesian search over tile sizes; monotone evolution, 1.68x";
  let o = Experiments.Cs5.run ctx in
  Experiments.Cs5.pp_outcome Fmt.stdout o

let cs5s () =
  banner "Extension - structured-level autotuning"
    "tile sizes interact with microkernel eligibility through alternatives";
  let o = Experiments.Cs5_structured.run ctx in
  Experiments.Cs5_structured.pp_outcome Fmt.stdout o

let s34 () =
  banner "E8 - Section 3.4 / Figure 5: transform-IR introspection for AD"
    "the AD transform emits adds of the dialect current at its position";
  let rows = Experiments.S34.run ctx in
  Experiments.S34.pp_rows Fmt.stdout rows

let ablations () =
  banner "Ablations: transform-IR simplification and checking overheads"
    "design choices called out in DESIGN.md";
  let rows = Experiments.Ablations.run ctx in
  Experiments.Ablations.pp_rows Fmt.stdout rows;
  Fmt.pr "@.";
  Experiments.Ablations.pp_check_row Fmt.stdout
    (Experiments.Ablations.dynamic_check_overhead ctx);
  Fmt.pr "@.";
  Experiments.Ablations.pp_ilist_rows Fmt.stdout
    (Experiments.Ablations.ilist_ablation ())

(* ------------------------------------------------------------------ *)
(* Greedy engine: legacy sweep driver vs worklist driver                *)
(* ------------------------------------------------------------------ *)

(** Squeezenet lowered to the canonicalize input: the Table-1 TOSA pipeline
    with its trailing [canonicalize,cse] stripped, so both engines see the
    exact IR the canonicalize pass runs on. *)
let greedy_setup () =
  let squeezenet =
    List.find
      (fun s -> s.Workloads.Models.sp_name = "squeezenet")
      Workloads.Models.paper_models
  in
  let passes =
    match Passes.Pass.parse_pipeline Workloads.Models.tosa_pipeline_str with
    | Ok ps ->
      List.filter
        (fun p ->
          p.Passes.Pass.name <> "canonicalize" && p.Passes.Pass.name <> "cse")
        ps
    | Error e -> failwith (Ir.Diag.to_string e)
  in
  let lowered = Workloads.Models.build squeezenet in
  (match Passes.Pass.run_pipeline ctx passes lowered with
  | Ok _ -> ()
  | Error e -> failwith (Ir.Diag.to_string e));
  let patterns =
    Passes.Transforms.canonicalization_patterns ctx
    @ Dialects.Arith.canonicalization_patterns ()
  in
  (lowered, patterns)

let greedy () =
  banner "E9 - Greedy rewrite engine: sweep driver vs worklist driver"
    "root-indexed worklist + uniqued fold constants; the compile-time \
     substrate of Table 1";
  let lowered, patterns = greedy_setup () in
  let frozen = Ir.Frozen_patterns.freeze patterns in
  let reps = 30 in
  let measure apply =
    let stats = Ir.Greedy.create_stats () in
    let times = Array.make reps 0.0 in
    let out = ref "" in
    (* warmup outside the measured reps *)
    for _ = 1 to 5 do
      let md = Ir.Ircore.clone_op lowered in
      ignore (apply ~stats:(Ir.Greedy.create_stats ()) md)
    done;
    for i = 0 to reps - 1 do
      let md = Ir.Ircore.clone_op lowered in
      let t0 = Unix.gettimeofday () in
      ignore (apply ~stats md);
      times.(i) <- Unix.gettimeofday () -. t0;
      out := Ir.Printer.op_to_string md
    done;
    Array.sort compare times;
    (stats, times.(reps / 2), !out)
  in
  let sweep_stats, sweep_t, sweep_ir =
    measure (fun ~stats md ->
        Ir.Greedy.apply_sweep ~config:Dialects.Dutil.greedy_config ~stats ctx
          ~patterns md)
  in
  let work_stats, work_t, work_ir =
    measure (fun ~stats md ->
        Ir.Greedy.apply ~config:Dialects.Dutil.greedy_config ~stats ctx
          ~patterns:frozen md)
  in
  let ir_equal = String.equal sweep_ir work_ir in
  let per_rep s = float_of_int s /. float_of_int reps in
  let attempts_sweep = per_rep sweep_stats.Ir.Greedy.match_attempts in
  let attempts_work = per_rep work_stats.Ir.Greedy.match_attempts in
  let ratio = if attempts_work > 0.0 then attempts_sweep /. attempts_work else 0.0 in
  let speedup = if work_t > 0.0 then sweep_t /. work_t else 0.0 in
  Fmt.pr "canonicalize(squeezenet lowered), median of %d reps:@." reps;
  Fmt.pr "  %-28s %12s %12s@." "" "sweep" "worklist";
  Fmt.pr "  %-28s %12.0f %12.0f@." "pattern match attempts" attempts_sweep
    attempts_work;
  Fmt.pr "  %-28s %12.3f %12.3f@." "wall time (ms)" (sweep_t *. 1000.)
    (work_t *. 1000.);
  Fmt.pr "  %-28s %12d %12d@." "iterations"
    sweep_stats.Ir.Greedy.iterations work_stats.Ir.Greedy.iterations;
  Fmt.pr "  attempt reduction: %.1fx   speedup: %.2fx   same output IR: %b@."
    ratio speedup ir_equal;
  let json =
    Ir.Json.Obj
      [
        ("benchmark", Ir.Json.String "canonicalize-squeezenet-lowered");
        ("reps", Ir.Json.Int reps);
        ("patterns", Ir.Json.Int (Ir.Frozen_patterns.size frozen));
        ( "sweep",
          Ir.Json.Obj
            [
              ("match_attempts", Ir.Json.Float attempts_sweep);
              ("wall_ms", Ir.Json.Float (sweep_t *. 1000.));
              ("rewrites", Ir.Json.Int (sweep_stats.Ir.Greedy.rewrites / reps));
              ("folds", Ir.Json.Int (sweep_stats.Ir.Greedy.folds / reps));
              ("dce", Ir.Json.Int (sweep_stats.Ir.Greedy.dce / reps));
            ] );
        ( "worklist",
          Ir.Json.Obj
            [
              ("match_attempts", Ir.Json.Float attempts_work);
              ("wall_ms", Ir.Json.Float (work_t *. 1000.));
              ("rewrites", Ir.Json.Int (work_stats.Ir.Greedy.rewrites / reps));
              ("folds", Ir.Json.Int (work_stats.Ir.Greedy.folds / reps));
              ("dce", Ir.Json.Int (work_stats.Ir.Greedy.dce / reps));
              ( "worklist_pushes",
                Ir.Json.Int (work_stats.Ir.Greedy.worklist_pushes / reps) );
            ] );
        ("attempt_reduction", Ir.Json.Float ratio);
        ("speedup", Ir.Json.Float speedup);
        ("ir_equal", Ir.Json.Bool ir_equal);
      ]
  in
  let oc = open_out "BENCH_greedy.json" in
  output_string oc (Ir.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "wrote BENCH_greedy.json@.";
  if not ir_equal then
    failwith "greedy bench: sweep and worklist fixpoints differ";
  if ratio < 5.0 then
    Fmt.pr "WARNING: attempt reduction %.1fx below the 5x target@." ratio

(* ------------------------------------------------------------------ *)
(* Profiler overhead: span cost with and without an ambient profiler    *)
(* ------------------------------------------------------------------ *)

let profiler () =
  banner "E10 - Profiler: per-span overhead, enabled vs disabled"
    "the ambient no-op path (one ref read) lets instrumentation stay on";
  let sink = ref 0 in
  let body () = incr sink in
  let time n f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    dt /. float_of_int n *. 1e9
  in
  (* warm up the minor heap / branch predictors *)
  ignore (time 10_000 body);
  let n_disabled = 2_000_000 and n_enabled = 200_000 in
  let ns_baseline = time n_disabled body in
  (* disabled: no ambient profiler installed (explicitly uninstall in case
     the whole bench run is itself being profiled with --profile=FILE) *)
  let ns_disabled =
    Ir.Profiler.with_disabled (fun () ->
        time n_disabled (fun () -> Ir.Profiler.span "bench.noop" body))
  in
  (* enabled: every span records a begin and an end event *)
  let p = Ir.Profiler.create () in
  let ns_enabled =
    Ir.Profiler.with_profiler p (fun () ->
        time n_enabled (fun () -> Ir.Profiler.span "bench.noop" body))
  in
  assert (Ir.Profiler.balanced p);
  assert (Ir.Profiler.span_count p = n_enabled);
  let ns_counter =
    Ir.Profiler.with_profiler p (fun () ->
        time n_enabled (fun () -> Ir.Profiler.counter "bench.count" 1.0))
  in
  Fmt.pr "per-span cost (body: one int incr):@.";
  Fmt.pr "  %-36s %10.1f ns@." "bare body" ns_baseline;
  Fmt.pr "  %-36s %10.1f ns@." "span, profiler disabled" ns_disabled;
  Fmt.pr "  %-36s %10.1f ns@." "span, profiler enabled" ns_enabled;
  Fmt.pr "  %-36s %10.1f ns@." "counter sample, enabled" ns_counter;
  Fmt.pr "  disabled overhead: %.1f ns/span; enabled records %d events@."
    (ns_disabled -. ns_baseline)
    (2 * n_enabled);
  let json =
    Ir.Json.Obj
      [
        ("benchmark", Ir.Json.String "profiler-span-overhead");
        ("spans_disabled", Ir.Json.Int n_disabled);
        ("spans_enabled", Ir.Json.Int n_enabled);
        ("ns_per_span_baseline", Ir.Json.Float ns_baseline);
        ("ns_per_span_disabled", Ir.Json.Float ns_disabled);
        ("ns_per_span_enabled", Ir.Json.Float ns_enabled);
        ("ns_per_counter_enabled", Ir.Json.Float ns_counter);
        ( "ns_disabled_overhead",
          Ir.Json.Float (ns_disabled -. ns_baseline) );
        ( "note",
          Ir.Json.String
            "disabled = no ambient profiler installed: Profiler.span is one \
             ref read plus a closure call, so instrumentation can stay on in \
             hot paths; enabled = two timestamped events per span" );
      ]
  in
  let oc = open_out "BENCH_profiler.json" in
  output_string oc (Ir.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "wrote BENCH_profiler.json@."

(* ------------------------------------------------------------------ *)
(* Action framework: disabled-site cost, journal cost, macro overhead   *)
(* ------------------------------------------------------------------ *)

let action_bench () =
  banner "E13 - Action framework: interception overhead"
    "disabled = one domain-local read per site; journal = one entry/action";
  let sink = ref 0 in
  let body () = incr sink in
  let time n f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    dt /. float_of_int n *. 1e9
  in
  ignore (time 10_000 body);
  let n_disabled = 2_000_000 and n_enabled = 200_000 in
  let ns_baseline = time n_disabled body in
  (* disabled: the hot-site shape — one Action.active () read, then the
     direct call (explicitly uninstall any ambient context first) *)
  let root = Dialects.Builtin.create_module () in
  let ns_disabled =
    Ir.Action.with_disabled (fun () ->
        time n_disabled (fun () ->
            match Ir.Action.active () with
            | None -> body ()
            | Some a ->
              Ir.Action.run_on a ~tag:"bench" ~desc:"noop" ~loc:Ir.Loc.unknown
                ~root ~skipped:() body))
  in
  (* journal-only context: every site allocates and records one entry *)
  let t = Ir.Action.create () in
  let ns_journal =
    Ir.Action.with_context t (fun () ->
        time n_enabled (fun () ->
            match Ir.Action.active () with
            | None -> body ()
            | Some a ->
              Ir.Action.run_on a ~tag:"bench" ~desc:"noop" ~loc:Ir.Loc.unknown
                ~root ~skipped:() body))
  in
  (* macro: squeezenet canonicalize with and without the journal; the
     handlers-off run must stay byte-identical *)
  let spec = List.hd Workloads.Models.paper_models in
  let canonicalize md =
    match
      Passes.Pass.run_pipeline ctx
        [ Passes.Pass.lookup_exn "canonicalize" ]
        md
    with
    | Ok (_ : Passes.Pass.run_result) -> ()
    | Error d -> failwith (Ir.Diag.to_string d)
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let md_off = Workloads.Models.build spec in
  let t_off = wall (fun () -> canonicalize md_off) in
  let ir_off = Ir.Printer.op_to_string md_off in
  let md_on = Workloads.Models.build spec in
  let journal = Ir.Action.create ~provenance:true () in
  let t_on =
    wall (fun () ->
        Ir.Action.with_context journal (fun () -> canonicalize md_on))
  in
  let ir_on = Ir.Printer.op_to_string md_on in
  let actions = List.length (Ir.Action.entries journal) in
  if not (String.equal ir_off ir_on) then
    failwith "action bench: journaled run diverged from the bare run";
  (* artifacts CI validates with otd-json *)
  let adir = artifacts_dir () in
  Ir.Action.write_journal journal
    ~path:(Filename.concat adir "ACTIONS_squeezenet.jsonl");
  Ir.Action.write_provenance journal ~root:md_on
    ~path:(Filename.concat adir "PROVENANCE_squeezenet.json");
  let overhead_ns = ns_disabled -. ns_baseline in
  Fmt.pr "per-site cost (body: one int incr):@.";
  Fmt.pr "  %-36s %10.1f ns@." "bare body" ns_baseline;
  Fmt.pr "  %-36s %10.1f ns@." "site, actions disabled" ns_disabled;
  Fmt.pr "  %-36s %10.1f ns@." "site, journal-only context" ns_journal;
  Fmt.pr "  disabled overhead: %.1f ns/site@." overhead_ns;
  Fmt.pr
    "squeezenet canonicalize: %.1f ms bare, %.1f ms journal+provenance (%d \
     actions), IR byte-identical@."
    (t_off *. 1000.) (t_on *. 1000.) actions;
  let json =
    Ir.Json.Obj
      [
        ("benchmark", Ir.Json.String "action-site-overhead");
        ("sites_disabled", Ir.Json.Int n_disabled);
        ("sites_journal", Ir.Json.Int n_enabled);
        ("ns_per_site_baseline", Ir.Json.Float ns_baseline);
        ("ns_per_site_disabled", Ir.Json.Float ns_disabled);
        ("ns_per_site_journal", Ir.Json.Float ns_journal);
        ("ns_disabled_overhead", Ir.Json.Float overhead_ns);
        ( "macro",
          Ir.Json.Obj
            [
              ("model", Ir.Json.String spec.Workloads.Models.sp_name);
              ("pipeline", Ir.Json.String "canonicalize");
              ("wall_ms_off", Ir.Json.Float (t_off *. 1000.));
              ("wall_ms_journal", Ir.Json.Float (t_on *. 1000.));
              ("actions", Ir.Json.Int actions);
              ("ir_byte_identical", Ir.Json.Bool true);
            ] );
        ( "note",
          Ir.Json.String
            "disabled = no ambient Action context: every instrumented site \
             (pass, pattern, fold, dce, transform dispatch) pays one \
             domain-local read before calling through; journal-only = one \
             entry allocation per action, no handlers, still parallel-safe \
             via capture/replay" );
      ]
  in
  let oc = open_out "BENCH_action.json" in
  output_string oc (Ir.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "wrote BENCH_action.json@."

(* ------------------------------------------------------------------ *)
(* Checkpoint: snapshot/restore cost vs payload size                    *)
(* ------------------------------------------------------------------ *)

let checkpoint () =
  banner "E11 - Checkpoint: payload snapshot/restore cost vs payload size"
    "the transactional substrate of alternatives and failures(suppress)";
  (* matmul with the innermost loop fully unrolled: k scales the op count
     linearly, so the linear take/restore cost model is directly visible *)
  let payload ~k =
    let md = Workloads.Matmul.build_module ~m:8 ~n:8 ~k () in
    let script =
      Transform.Build.script (fun rw root ->
          let loop =
            Transform.Build.match_op rw ~select:"last" ~name:"scf.for" root
          in
          Transform.Build.loop_unroll_full rw loop)
    in
    (match Transform.Schedule.run ctx ~script ~payload:md with
    | Ok _ -> ()
    | Error e -> failwith (Transform.Terror.to_string e));
    md
  in
  let reps = 200 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let measure ~k =
    let md = payload ~k in
    let pre = Ir.Printer.op_to_string md in
    let ops = ref 0 in
    Ir.Ircore.walk_op md ~pre:(fun _ -> incr ops);
    let take_s = ref 0.0 and restore_s = ref 0.0 in
    for _ = 1 to reps do
      let cp = ref None in
      take_s := !take_s +. time (fun () -> cp := Some (Ir.Checkpoint.take md));
      let cp = Option.get !cp in
      (* mutate, then roll back: restore pays for the splice *)
      Ir.Ircore.set_attr md "bench.mutated" Ir.Attr.Unit;
      restore_s := !restore_s +. time (fun () -> Ir.Checkpoint.restore cp)
    done;
    if not (String.equal pre (Ir.Printer.op_to_string md)) then
      failwith "checkpoint bench: restore was not byte-identical";
    let per r = !r /. float_of_int reps *. 1e6 in
    (!ops, per take_s, per restore_s)
  in
  let sizes = [ 4; 16; 64; 256 ] in
  let rows = List.map (fun k -> (k, measure ~k)) sizes in
  Fmt.pr "take/restore, mean of %d reps:@." reps;
  Fmt.pr "  %-10s %10s %14s %14s %16s@." "k (unroll)" "payload ops"
    "take (us)" "restore (us)" "take us/op";
  List.iter
    (fun (k, (ops, take_us, restore_us)) ->
      Fmt.pr "  %-10d %10d %14.1f %14.1f %16.3f@." k ops take_us restore_us
        (take_us /. float_of_int ops))
    rows;
  let json =
    Ir.Json.Obj
      [
        ("benchmark", Ir.Json.String "checkpoint-take-restore");
        ("reps", Ir.Json.Int reps);
        ( "rows",
          Ir.Json.List
            (List.map
               (fun (k, (ops, take_us, restore_us)) ->
                 Ir.Json.Obj
                   [
                     ("k", Ir.Json.Int k);
                     ("payload_ops", Ir.Json.Int ops);
                     ("take_us", Ir.Json.Float take_us);
                     ("restore_us", Ir.Json.Float restore_us);
                     ( "take_us_per_op",
                       Ir.Json.Float (take_us /. float_of_int ops) );
                   ])
               rows) );
        ( "note",
          Ir.Json.String
            "take = deep clone + op/value side tables, linear in payload \
             size; restore = reference-drop + region splice onto the live \
             root, also linear; every restore is checked byte-identical" );
      ]
  in
  let oc = open_out "BENCH_checkpoint.json" in
  output_string oc (Ir.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "wrote BENCH_checkpoint.json@."

(* ------------------------------------------------------------------ *)
(* Compiled schedules: cached re-apply vs sequential interpretation     *)
(* ------------------------------------------------------------------ *)

(** A navigation-heavy transform script, [k] repetitions of a block that
    matches, annotates, calls into a named sequence and applies a
    pre-listed pattern set to a one-op target — the profile where
    per-op dispatch, include resolution and pattern freezing dominate and
    schedule compilation pays off. Pass-dominated scripts (Table 1) spend
    their time inside the passes and gain little; that regime is measured
    separately by E1. *)
let schedule_bench_script ~k =
  let module B = Transform.Build in
  let pattern_names = Dialects.Shlo_patterns.names () in
  let m =
    B.script (fun rw root ->
        let funcs = B.match_op rw ~name:"func.func" root in
        let ret = B.match_op rw ~select:"first" ~name:"func.return" root in
        for i = 1 to k do
          ignore (B.param_constant rw i);
          let inc = B.include_ rw ~target:"bench_helper" [ funcs ] ~results:1 in
          B.annotate rw ~name:"bench.tick" (Ir.Ircore.result ~index:0 inc);
          B.apply_patterns rw ret pattern_names
        done)
  in
  ignore
    (B.named_sequence m ~name:"bench_helper" ~num_args:1 (fun rw args ->
         let h = List.hd args in
         B.annotate rw ~name:"bench.helper" h;
         ignore (B.param_constant rw 7);
         [ h ]));
  m

let schedule_bench () =
  banner "E12 - Compiled schedules: cached re-apply vs interpretation"
    "dispatch resolved at compile time, includes inlined, patterns \
     pre-frozen, handles in slot arrays";
  let k = 128 in
  let script = schedule_bench_script ~k in
  let reps = 15 in
  (* payload clones and IR printing happen outside the timed region: only
     the schedule application itself is measured *)
  let median apply payload =
    let times = Array.make reps 0.0 in
    let last = ref payload in
    for _ = 1 to 3 do
      ignore (apply (Ir.Ircore.clone_op payload))
    done;
    for i = 0 to reps - 1 do
      let md = Ir.Ircore.clone_op payload in
      let t0 = Unix.gettimeofday () in
      (match apply md with
      | Ok (_ : int) -> ()
      | Error e -> failwith (Transform.Terror.to_string e));
      times.(i) <- Unix.gettimeofday () -. t0;
      last := md
    done;
    Array.sort compare times;
    (times.(reps / 2), Ir.Printer.op_to_string !last)
  in
  Transform.Schedule.clear_cache ();
  let schedule = Transform.Schedule.of_script ctx script in
  assert (Transform.Schedule.is_compiled schedule);
  let rows =
    List.map
      (fun spec ->
        let name = spec.Workloads.Models.sp_name in
        let payload = Workloads.Models.build spec in
        let interp_t, interp_ir =
          median
            (fun md ->
              Transform.Schedule.run ~mode:`Interpret ctx ~script ~payload:md)
            payload
        in
        (* cached re-apply: the schedule is compiled once; each rep pays
           only slot-array execution on a fresh payload *)
        let compiled_t, compiled_ir =
          median (fun md -> Transform.Schedule.apply schedule ~payload:md)
            payload
        in
        (* facade path: re-presenting the script pays one fingerprint walk
           plus a cache probe before the same compiled application *)
        let facade_t, _ =
          median (fun md -> Transform.Schedule.run ctx ~script ~payload:md)
            payload
        in
        let ir_equal = String.equal interp_ir compiled_ir in
        let speedup = if compiled_t > 0.0 then interp_t /. compiled_t else 0.0 in
        (name, interp_t, compiled_t, facade_t, speedup, ir_equal))
      Workloads.Models.paper_models
  in
  Fmt.pr "script: %d transform ops (%d fallbacks), %d handle slots; median \
          of %d reps@."
    (Transform.Schedule.instr_count schedule)
    (Transform.Schedule.fallback_count schedule)
    (Transform.Schedule.slot_count schedule)
    reps;
  Fmt.pr "  %-20s %12s %12s %12s %9s %6s@." "model" "interp (ms)"
    "compiled (ms)" "cached (ms)" "speedup" "same IR";
  List.iter
    (fun (name, it, ct, ft, speedup, ir_equal) ->
      Fmt.pr "  %-20s %12.3f %12.3f %12.3f %8.2fx %6b@." name (it *. 1000.)
        (ct *. 1000.) (ft *. 1000.) speedup ir_equal)
    rows;
  (* the 500-case differential campaign: compiled vs interpreted execution
     must agree on outcome and payload IR on every generated module *)
  let diff = Fuzz.Driver.run_schedule_diff ctx ~seed:42 ~cases:500 () in
  let divergences = List.length diff.Fuzz.Driver.s_failures in
  Fmt.pr "differential campaign: %d cases, %d divergences, %.1f s@."
    diff.Fuzz.Driver.s_cases divergences diff.Fuzz.Driver.s_seconds;
  let ge2x =
    List.length (List.filter (fun (_, _, _, _, s, _) -> s >= 2.0) rows)
  in
  let all_ir_equal = List.for_all (fun (_, _, _, _, _, e) -> e) rows in
  let json =
    Ir.Json.Obj
      [
        ("benchmark", Ir.Json.String "compiled-schedule-reapply");
        ("reps", Ir.Json.Int reps);
        ("script_instrs", Ir.Json.Int (Transform.Schedule.instr_count schedule));
        ( "script_fallbacks",
          Ir.Json.Int (Transform.Schedule.fallback_count schedule) );
        ("handle_slots", Ir.Json.Int (Transform.Schedule.slot_count schedule));
        ( "fingerprint",
          Ir.Json.String
            (Ir.Fingerprint.to_hex (Transform.Schedule.fingerprint schedule)) );
        ( "models",
          Ir.Json.List
            (List.map
               (fun (name, it, ct, ft, speedup, ir_equal) ->
                 Ir.Json.Obj
                   [
                     ("model", Ir.Json.String name);
                     ("interpreted_ms", Ir.Json.Float (it *. 1000.));
                     ("compiled_ms", Ir.Json.Float (ct *. 1000.));
                     ("cached_facade_ms", Ir.Json.Float (ft *. 1000.));
                     ("speedup", Ir.Json.Float speedup);
                     ("ir_equal", Ir.Json.Bool ir_equal);
                   ])
               rows) );
        ("models_ge_2x", Ir.Json.Int ge2x);
        ( "differential",
          Ir.Json.Obj
            [
              ("seed", Ir.Json.Int 42);
              ("cases", Ir.Json.Int diff.Fuzz.Driver.s_cases);
              ("divergences", Ir.Json.Int divergences);
              ("seconds", Ir.Json.Float diff.Fuzz.Driver.s_seconds);
            ] );
        ( "note",
          Ir.Json.String
            "interpreted = sequential interpreter re-resolving dispatch, \
             includes and pattern sets per op; compiled = re-applying the \
             cached schedule to a fresh payload clone; cached_facade also \
             pays the per-call fingerprint + cache probe" );
      ]
  in
  let oc = open_out "BENCH_compiled.json" in
  output_string oc (Ir.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "wrote BENCH_compiled.json@.";
  if divergences > 0 then
    failwith "schedule bench: compiled and interpreted execution diverged";
  if not all_ir_equal then
    failwith "schedule bench: output IR differs between modes";
  if ge2x < 3 then
    Fmt.pr "WARNING: only %d/%d models reach the 2x re-apply target@." ge2x
      (List.length rows)

(* ------------------------------------------------------------------ *)
(* Multicore pass manager: speedup vs domain count                      *)
(* ------------------------------------------------------------------ *)

(** Function-at-a-time parallel scheduling on the two biggest Table-1
    models, split into 32 [func.func]s so the module has enough
    isolated-from-above roots to balance across domains. Each degree runs
    the full Case-Study-1 lowering (canonicalize included) and the output
    is byte-compared against the sequential run — the speedup curve is
    only admissible where [ir_equal] holds. *)
let parallel_bench () =
  banner "E13 - Multicore pass manager: function-at-a-time scheduling"
    "per-function passes fan over a domain pool; byte-identical output";
  let saved_jobs = Ir.Pool.jobs () in
  let funcs = 32 in
  let degrees = [ 1; 2; 4; 8 ] in
  let reps = 5 in
  let passes =
    match Passes.Pass.parse_pipeline Workloads.Models.tosa_pipeline_str with
    | Ok ps -> ps
    | Error e -> failwith (Ir.Diag.to_string e)
  in
  let specs =
    List.filter
      (fun s ->
        List.mem s.Workloads.Models.sp_name [ "gpt2"; "mobilebert" ])
      Workloads.Models.paper_models
  in
  let measure spec jobs =
    Ir.Pool.set_jobs jobs;
    let times = Array.make reps 0.0 in
    let out = ref "" in
    (* warmup: pools spawn lazily on the first fan-out *)
    (let md = Workloads.Models.build ~funcs spec in
     match Passes.Pass.run_pipeline ctx passes md with
     | Ok _ -> ()
     | Error e -> failwith (Ir.Diag.to_string e));
    for i = 0 to reps - 1 do
      let md = Workloads.Models.build ~funcs spec in
      let t0 = Unix.gettimeofday () in
      (match Passes.Pass.run_pipeline ctx passes md with
      | Ok _ -> ()
      | Error e -> failwith (Ir.Diag.to_string e));
      times.(i) <- Unix.gettimeofday () -. t0;
      out := Ir.Printer.op_to_string md
    done;
    Array.sort compare times;
    (times.(reps / 2), !out)
  in
  let cores = Domain.recommended_domain_count () in
  let rows =
    Fun.protect
      ~finally:(fun () -> Ir.Pool.set_jobs saved_jobs)
      (fun () ->
        List.map
          (fun spec ->
            let name = spec.Workloads.Models.sp_name in
            let seq_t, seq_ir = measure spec 1 in
            let points =
              List.map
                (fun j ->
                  if j = 1 then (1, seq_t, 1.0, true)
                  else begin
                    let t, ir = measure spec j in
                    let speedup = if t > 0.0 then seq_t /. t else 0.0 in
                    (j, t, speedup, String.equal seq_ir ir)
                  end)
                degrees
            in
            (name, points))
          specs)
  in
  Fmt.pr
    "lowering pipeline (%s)@.%d functions per model, median of %d reps, %d \
     core%s available@."
    Workloads.Models.tosa_pipeline_str funcs reps cores
    (if cores = 1 then "" else "s");
  List.iter
    (fun (name, points) ->
      Fmt.pr "  %s:@." name;
      List.iter
        (fun (j, t, speedup, ir_equal) ->
          Fmt.pr "    jobs=%d %10.1f ms   speedup %5.2fx   same IR: %b@." j
            (t *. 1000.) speedup ir_equal)
        points)
    rows;
  let all_ir_equal =
    List.for_all
      (fun (_, points) -> List.for_all (fun (_, _, _, e) -> e) points)
    rows
  in
  let json =
    Ir.Json.Obj
      [
        ("benchmark", Ir.Json.String "parallel-pass-manager");
        ("pipeline", Ir.Json.String Workloads.Models.tosa_pipeline_str);
        ("functions_per_model", Ir.Json.Int funcs);
        ("reps", Ir.Json.Int reps);
        ("cores", Ir.Json.Int cores);
        ( "models",
          Ir.Json.List
            (List.map
               (fun (name, points) ->
                 Ir.Json.Obj
                   [
                     ("model", Ir.Json.String name);
                     ( "points",
                       Ir.Json.List
                         (List.map
                            (fun (j, t, speedup, ir_equal) ->
                              Ir.Json.Obj
                                [
                                  ("jobs", Ir.Json.Int j);
                                  ("wall_ms", Ir.Json.Float (t *. 1000.));
                                  ("speedup", Ir.Json.Float speedup);
                                  ("ir_equal", Ir.Json.Bool ir_equal);
                                ])
                            points) );
                   ])
               rows) );
        ( "note",
          Ir.Json.String
            "speedup = sequential median / parallel median on the same \
             generated module; ir_equal byte-compares the printed module \
             against the sequential run. On a single-core host the curve \
             is flat (the pool adds fan-out overhead, no parallelism); \
             the CI bench-parallel job regenerates this file on multi-core \
             runners" );
      ]
  in
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Ir.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "wrote BENCH_parallel.json@.";
  if not all_ir_equal then
    failwith "parallel bench: parallel output IR differs from sequential"

(* ------------------------------------------------------------------ *)
(* Compilation server: load generator over a unix-socket daemon        *)
(* ------------------------------------------------------------------ *)

let server_bench () =
  banner "Compilation server: throughput, latency, cache hit-rate"
    "repeated-job workload over the otd_server wire protocol";
  let clients = 4 and per_client = 120 and corpus_size = 6 in
  let policy =
    {
      Server.Engine.default_policy with
      Server.Engine.p_jobs = 3;
      p_queue_depth = clients * per_client;
      p_backoff_ms = 0;
    }
  in
  let engine = Server.Engine.create ~policy () in
  let sock = Filename.concat (artifacts_dir ()) "bench-server.sock" in
  let listener =
    Server.Transport.serve_unix engine ~path:sock ~conns:clients
  in
  let corpus =
    Array.init corpus_size (fun k ->
        Ir.Printer.op_to_string (Fuzz.Driver.module_for ~seed:11 ~case:k ()))
  in
  let count name =
    match Ir.Stats.find_counter ~component:"server" name with
    | Some c -> Ir.Stats.value c
    | None -> 0
  in
  let hits0 = count "cache_hits" and misses0 = count "cache_misses" in
  let request ~client:_ ~i =
    Ir.Json.Obj
      [
        ("kind", Ir.Json.String "compile");
        ("payload", Ir.Json.String corpus.(i mod corpus_size));
        ("pipeline", Ir.Json.String "canonicalize,cse");
      ]
  in
  let report =
    Fun.protect
      ~finally:(fun () ->
        Server.Transport.stop_listener listener;
        Server.Engine.close engine)
      (fun () ->
        Server.Load.run ~clients ~requests_per_client:per_client
          ~connect:(fun _ -> Server.Load.socket_conn sock)
          ~request)
  in
  let hits = count "cache_hits" - hits0
  and misses = count "cache_misses" - misses0 in
  let lookups = hits + misses in
  let hit_rate =
    if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups
  in
  Fmt.pr "%a@." Server.Load.pp_report report;
  Fmt.pr
    "result cache: %d hits / %d lookups (%.1f%% hit-rate; %d distinct jobs)@."
    hits lookups (100. *. hit_rate) corpus_size;
  let json =
    Ir.Json.Obj
      [
        ("benchmark", Ir.Json.String "server-load");
        ("clients", Ir.Json.Int clients);
        ("requests_per_client", Ir.Json.Int per_client);
        ("distinct_jobs", Ir.Json.Int corpus_size);
        ("pipeline", Ir.Json.String "canonicalize,cse");
        ("load", Server.Load.report_json report);
        ("cache_hits", Ir.Json.Int hits);
        ("cache_misses", Ir.Json.Int misses);
        ("cache_hit_rate", Ir.Json.Float hit_rate);
        ( "note",
          Ir.Json.String
            "each client replays the same small job corpus over the unix \
             socket; after the first misses warm the content-addressed \
             result cache every response is served from it, so hit-rate \
             approaches (requests - distinct_jobs) / requests" );
      ]
  in
  let oc = open_out "BENCH_server.json" in
  output_string oc (Ir.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "wrote BENCH_server.json@.";
  if report.Server.Load.r_ok <> report.Server.Load.r_requests then
    failwith
      (Fmt.str "server bench: %d of %d requests did not return ok"
         (report.Server.Load.r_requests - report.Server.Load.r_ok)
         report.Server.Load.r_requests);
  if hit_rate < 0.9 then
    failwith
      (Fmt.str "server bench: cache hit-rate %.2f below the 0.90 floor"
         hit_rate)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment kernel       *)
(* ------------------------------------------------------------------ *)

let micro () =
  banner "Micro-benchmarks (Bechamel)" "one staged kernel per experiment";
  let open Bechamel in
  let squeezenet =
    List.find
      (fun s -> s.Workloads.Models.sp_name = "squeezenet")
      Workloads.Models.paper_models
  in
  let passes =
    match Passes.Pass.parse_pipeline Workloads.Models.tosa_pipeline_str with
    | Ok ps -> ps
    | Error e -> failwith (Ir.Diag.to_string e)
  in
  let tests =
    [
      Test.make ~name:"table1/pass-manager(squeezenet)"
        (Staged.stage (fun () ->
             let md = Workloads.Models.build squeezenet in
             ignore (Passes.Pass.run_pipeline ctx passes md)));
      (let script = Transform.From_pipeline.script_of_pipeline passes in
       Test.make ~name:"table1/transform(squeezenet)"
         (Staged.stage (fun () ->
              let md = Workloads.Models.build squeezenet in
              ignore
                (Transform.Schedule.run ~mode:`Interpret ctx ~script
                   ~payload:md))));
      Test.make ~name:"table2/static-checker"
        (Staged.stage (fun () ->
             ignore
               (Transform.Conditions.check_passes
                  ~initial:Experiments.Table2.initial_opset
                  ~final:Experiments.Table2.final_opset
                  (List.map Passes.Pass.lookup_exn
                     Workloads.Subview_kernel.naive_pipeline))));
      Test.make ~name:"cs3/pattern-probe(llm)"
        (Staged.stage (fun () ->
             ignore
               (Experiments.Cs3.probe ctx (Dialects.Shlo_patterns.names ()))));
      Test.make ~name:"cs4/split+tile+to_library"
        (Staged.stage (fun () ->
             let md =
               Workloads.Matmul.build_module ~m:Experiments.Cs4.m
                 ~n:Experiments.Cs4.n ~k:Experiments.Cs4.k ()
             in
             ignore
               (Transform.Schedule.run ctx
                  ~script:(Experiments.Cs4.microkernel_script ())
                  ~payload:md)));
      Test.make ~name:"cs5/one-evaluation(32^3)"
        (Staged.stage (fun () ->
             let md =
               Workloads.Matmul.build_module ~order:Workloads.Matmul.Ikj ~m:32
                 ~n:32 ~k:32 ()
             in
             ignore (Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m:32 ~n:32 ~k:32 md)));
      Test.make ~name:"s34/introspect+ad"
        (Staged.stage (fun () -> ignore (Experiments.S34.run ctx)));
    ]
    @ (let lowered, patterns = greedy_setup () in
       let frozen = Ir.Frozen_patterns.freeze patterns in
       [
         Test.make ~name:"greedy/sweep(squeezenet-lowered)"
           (Staged.stage (fun () ->
                let md = Ir.Ircore.clone_op lowered in
                ignore
                  (Ir.Greedy.apply_sweep ~config:Dialects.Dutil.greedy_config
                     ctx ~patterns md)));
         Test.make ~name:"greedy/worklist(squeezenet-lowered)"
           (Staged.stage (fun () ->
                let md = Ir.Ircore.clone_op lowered in
                ignore
                  (Ir.Greedy.apply ~config:Dialects.Dutil.greedy_config ctx
                     ~patterns:frozen md)));
       ])
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test
      in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ e ] -> Fmt.pr "  %-40s %14.1f ns/run@." name e
          | _ -> Fmt.pr "  %-40s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let no_micro = List.mem "--no-micro" args in
  let args = List.filter (fun a -> a <> "--no-micro") args in
  (* --profile=FILE profiles the whole bench run into Chrome trace-event
     JSON (the sections' pipeline/greedy/interpreter spans) *)
  let profile_prefix = "--profile=" in
  let profile_path =
    List.find_map
      (fun a ->
        if
          String.length a > String.length profile_prefix
          && String.sub a 0 (String.length profile_prefix) = profile_prefix
        then
          Some
            (String.sub a (String.length profile_prefix)
               (String.length a - String.length profile_prefix))
        else None)
      args
  in
  let args =
    List.filter
      (fun a ->
        String.length a < String.length profile_prefix
        || String.sub a 0 (String.length profile_prefix) <> profile_prefix)
      args
  in
  (* --jobs=N configures the global pool (0 = auto); the parallel section
     sweeps degrees itself and restores this setting afterwards *)
  let jobs_prefix = "--jobs=" in
  List.iter
    (fun a ->
      if
        String.length a > String.length jobs_prefix
        && String.sub a 0 (String.length jobs_prefix) = jobs_prefix
      then
        match
          int_of_string_opt
            (String.sub a (String.length jobs_prefix)
               (String.length a - String.length jobs_prefix))
        with
        | Some 0 -> Ir.Pool.set_jobs (Ir.Pool.default_jobs ())
        | Some n when n >= 1 -> Ir.Pool.set_jobs n
        | _ -> failwith (Fmt.str "invalid %s" a))
    args;
  let args =
    List.filter
      (fun a ->
        String.length a < String.length jobs_prefix
        || String.sub a 0 (String.length jobs_prefix) <> jobs_prefix)
      args
  in
  let want s = args = [] || List.mem s args in
  Fmt.pr "OCaml Transform-dialect reproduction - benchmark harness@.";
  Fmt.pr "(simulated machine: %.1f GHz, L1 %dK, L2 %dK; see DESIGN.md)@."
    Interp.Machine.default_config.Interp.Machine.freq_ghz
    (Interp.Machine.default_config.Interp.Machine.l1_size / 1024)
    (Interp.Machine.default_config.Interp.Machine.l2_size / 1024);
  let run_sections () =
    let t1_rows = ref None in
    if want "table1" then t1_rows := Some (table1 ());
    if want "fig6" then
      fig6
        (match !t1_rows with
        | Some rows -> rows
        | None -> Experiments.Table1.run ~reps:3 ctx);
    if want "table2" then table2 ();
    if want "cs3" then cs3 ();
    if want "cs4" then cs4 ();
    if want "cs5" then cs5 ();
    if want "cs5-structured" then cs5s ();
    if want "s34" then s34 ();
    if want "ablations" then ablations ();
    if want "greedy" then greedy ();
    if want "profiler" then profiler ();
    if want "action" then action_bench ();
    if want "checkpoint" then checkpoint ();
    if want "schedule" then schedule_bench ();
    if want "parallel" then parallel_bench ();
    if want "server" then server_bench ();
    if (not no_micro) && (args = [] || List.mem "micro" args) then micro ()
  in
  (match profile_path with
  | None -> run_sections ()
  | Some path ->
    let p = Ir.Profiler.create () in
    Ir.Profiler.with_profiler p run_sections;
    Ir.Profiler.write p ~path;
    Fmt.pr "wrote %s (%d spans)@." path (Ir.Profiler.span_count p));
  Fmt.pr "@.done.@."
