(** otd-opt: the mlir-opt analogue of this repository.

    Reads a module in generic textual form, optionally verifies it, runs a
    comma-separated pass pipeline and/or a Transform script (from a separate
    file or embedded in the same module as a [@__transform_main] named
    sequence), and prints the result.

    Observability flags:
    - [--timing] prints the hierarchical timing tree and per-pass op-count
      deltas;
    - [--print-ir-after-all[=changed|always]] dumps the IR after passes
      (stderr); the default [changed] mode skips passes that left the
      module fingerprint-identical, [always] restores unconditional dumps;
    - [--action-journal[=PATH]] records every transformation unit (pass,
      pattern, fold, DCE, transform dispatch, schedule compilation) routed
      through {!Ir.Action} as one JSONL line;
    - [--debug-counter=TAG:SKIP,COUNT] skips the first SKIP actions of TAG,
      executes the next COUNT and skips the rest (MLIR DebugCounter
      semantics) — the manual bisection knob for "which rewrite broke it";
    - [--print-ir-after-change[=TAGS]] / [--snapshot-after-change=DIR]
      diff/dump the changed functions after each action whose tag is in
      TAGS (default [pass,transform]), gated on fingerprint inequality;
    - [--provenance[=PATH]] dumps per-op provenance — which action created,
      modified or erased each op — as JSON (queryable via
      [otd-check --provenance]);
    - [--trace[=text|json]] prints the execution trace (transform ops with
      handle payload sizes, suppressed silenceable errors, greedy-driver
      stats, per-pass events) — both forms go to stderr: [--trace] /
      [--trace=text] renders the human-readable listing, [--trace=json]
      reuses the {!Ir.Trace.to_json} rendering;
    - [--profile[=PATH]] records nested profiler spans (pipeline → pass →
      greedy driver, transform-interpreter ops) and writes Chrome
      trace-event JSON to $(i,PATH) (default [profile.json]) — load it at
      [ui.perfetto.dev] or [chrome://tracing];
    - [--stats[=text|json]] prints the global statistics registry
      (greedy-driver counters, conversion-pass op counts, interpreter
      handle volumes) to stderr after the run;
    - [--remarks=KINDS] ([passed,missed,analysis] or [all]) prints
      optimization remarks with payload locations to stderr;
      [--remarks-filter=REGEX] keeps only remarks whose pass name or
      message matches;
    - [--diagnostics=json] replaces the textual module on stdout with one
      JSON object carrying diagnostics, trace, timing, remarks, stats and
      the final IR;
    - [--reproducer PATH] writes a crash reproducer on pass failure; a
      reproducer file fed back to otd-opt replays its embedded pipeline. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Extract the pipeline embedded in a crash-reproducer header, if any. *)
let reproducer_pipeline src =
  let marker = "// configuration: --pass-pipeline=" in
  let rec scan lines =
    match lines with
    | [] -> None
    | line :: rest ->
      let line = String.trim line in
      if String.length line >= String.length marker
         && String.sub line 0 (String.length marker) = marker
      then
        Some
          (String.sub line (String.length marker)
             (String.length line - String.length marker))
      else if String.length line >= 2 && String.sub line 0 2 = "//" then
        scan rest
      else None
  in
  scan (String.split_on_char '\n' src)

type json_report = {
  mutable j_diagnostics : Ir.Diag.t list;
  mutable j_ir_after : (string * string) list;  (** pass name, IR text *)
}

(* shared by the binaries: resolve a [--jobs] value against the OTD_JOBS
   fallback already baked into [Ir.Pool]. [Some 0] means auto-size. *)
let apply_jobs = function
  | None -> Ok () (* keep OTD_JOBS (or sequential) *)
  | Some 0 -> Ok (Ir.Pool.set_jobs (Ir.Pool.default_jobs ()))
  | Some n when n >= 1 -> Ok (Ir.Pool.set_jobs n)
  | Some n -> Error (Fmt.str "--jobs must be >= 0 (got %d)" n)

let split_tags s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun t -> t <> "")

let run input pipeline transform_file no_compile flow_check no_verify list_passes timing
    print_ir_after_all trace diagnostics_format reproducer_path pretty profile
    stats remarks remarks_filter max_steps deadline_ms jobs debug_counters
    action_journal print_ir_after_change snapshot_after_change provenance_path
    =
  Printexc.record_backtrace true;
  (* SIGINT raises Sys.Break at the next safe point instead of killing the
     process: open journals, traces and reports still flush below, and the
     user gets a clean diagnostic rather than a bare backtrace *)
  Sys.catch_break true;
  match apply_jobs jobs with
  | Error e -> `Error (false, e)
  | Ok () ->
  let ctx = Transform.Register.full_context () in
  let remark_kinds_r =
    match remarks with
    | None -> Ok None
    | Some s -> Result.map Option.some (Ir.Remark.kinds_of_string s)
  in
  let remark_re_r =
    match remarks_filter with
    | None -> Ok None
    | Some re -> (
      try Ok (Some (Str.regexp re))
      with Failure e ->
        Error (Fmt.str "invalid --remarks-filter regex %S: %s" re e))
  in
  let counters_r =
    List.fold_left
      (fun acc s ->
        Result.bind acc (fun cs ->
            Result.map (fun c -> c :: cs) (Ir.Action.parse_counter s)))
      (Ok []) debug_counters
    |> Result.map List.rev
  in
  match (remark_kinds_r, remark_re_r, counters_r) with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> `Error (false, e)
  | Ok remark_kinds, Ok remark_re, Ok counters ->
  if list_passes then begin
    List.iter
      (fun p ->
        Fmt.pr "%-32s %s@." p.Passes.Pass.name p.Passes.Pass.summary)
      (Passes.Pass.all_registered ());
    `Ok ()
  end
  else
    match input with
    | None -> `Error (false, "missing input file")
    | Some path -> (
      match
        if path = "-" then In_channel.input_all stdin else read_file path
      with
      | exception Sys_error e -> `Error (false, e)
      | src ->
      (
      let json_mode = diagnostics_format = "json" in
      let report = { j_diagnostics = []; j_ir_after = [] } in
      let emit_diag d =
        report.j_diagnostics <- report.j_diagnostics @ [ d ];
        if not json_mode then Fmt.epr "%a@." Ir.Diag.pp d
      in
      (* route context-emitted diagnostics through the same collector *)
      Ir.Diag.push_handler (Ir.Context.diag_engine ctx) emit_diag;
      (* a reproducer input replays its embedded pipeline *)
      let pipeline =
        match (pipeline, reproducer_pipeline src) with
        | Some p, _ -> Some p
        | None, Some embedded ->
          emit_diag
            (Ir.Diag.remark "replaying reproducer pipeline: %s" embedded);
          Some embedded
        | None, None -> None
      in
      match Ir.Parser.parse_module src with
      | Error e -> `Error (false, Fmt.str "parse error: %s" e)
      | Ok m ->
        let timing_tree = ref None in
        let op_count_instr, op_deltas = Passes.Pass.op_count_deltas () in
        let snapshot_instr =
          (* capture per-pass IR snapshots for the JSON report *)
          Passes.Pass.instrumentation "json-ir-snapshots"
            ~after_pass:(fun p op ->
              report.j_ir_after <-
                report.j_ir_after
                @ [ (p.Passes.Pass.name, Fmt.str "%a" Ir.Printer.pp_op op) ])
        in
        let instrumentations =
          (match print_ir_after_all with
          | Some mode when not json_mode ->
            [
              Passes.Pass.print_ir_after_all
                ~only_changed:(mode = "changed") ();
            ]
          | _ -> [])
          @ (if print_ir_after_all <> None && json_mode then
               [ snapshot_instr ]
             else [])
          @ (if timing then [ op_count_instr ] else [])
          @
          match reproducer_path with
          | Some rp -> [ Passes.Pass.reproducer ~path:rp ]
          | None -> []
        in
        let verify () =
          if no_verify then Ok ()
          else
            match Ir.Verifier.verify ctx m with
            | Ok () -> Ok ()
            | Error diags ->
              List.iter emit_diag diags;
              Error
                (Fmt.str "verification failed with %d diagnostics"
                   (List.length diags))
        in
        let apply_pipeline () =
          match pipeline with
          | None -> Ok ()
          | Some str -> (
            match Passes.Pass.parse_pipeline str with
            | Error d ->
              emit_diag d;
              Error "invalid pass pipeline"
            | Ok passes -> (
              match
                Passes.Pass.run_pipeline ~instrumentations ctx passes m
              with
              | Ok result ->
                timing_tree := Some result.Passes.Pass.timing;
                Ok ()
              | Error d ->
                emit_diag d;
                Error "pass pipeline failed"))
        in
        let apply_transform () =
          match transform_file with
          | None -> Ok ()
          | Some tf -> (
            match Ir.Parser.parse_module (read_file tf) with
            | exception Sys_error e -> Error e
            | Error e -> Error (Fmt.str "transform script parse error: %s" e)
            | Ok script -> (
              let t0 = Unix.gettimeofday () in
              let mode = if no_compile then `Interpret else `Compile in
              let config =
                if flow_check then
                  {
                    Transform.State.default_config with
                    Transform.State.check_annotations = true;
                  }
                else Transform.State.default_config
              in
              match
                Transform.Schedule.run ~flow:flow_check ~mode ~config ctx
                  ~script ~payload:m
              with
              | Ok steps ->
                if timing then begin
                  let seconds = Unix.gettimeofday () -. t0 in
                  let node =
                    {
                      Passes.Pass.t_name =
                        Fmt.str "transform-interpreter (%d steps)" steps;
                      t_seconds = seconds;
                      t_children = [];
                    }
                  in
                  timing_tree :=
                    Some
                      (match !timing_tree with
                      | None -> node
                      | Some t ->
                        {
                          t with
                          Passes.Pass.t_children =
                            t.Passes.Pass.t_children @ [ node ];
                          t_seconds = t.Passes.Pass.t_seconds +. seconds;
                        })
                end;
                Ok ()
              | Error e ->
                emit_diag (Transform.Terror.diag e);
                Error
                  (Fmt.str "transform interpretation failed (%s)"
                     (if Transform.Terror.is_silenceable e then "silenceable"
                      else "definite"))))
        in
        let sink = Ir.Trace.create () in
        let profiler = Option.map (fun _ -> Ir.Profiler.create ()) profile in
        let captured_remarks = ref [] in
        let with_profiler f =
          match profiler with
          | None -> f ()
          | Some p -> Ir.Profiler.with_profiler p f
        in
        let with_remarks f =
          match remark_kinds with
          | None -> f ()
          | Some _ ->
            Ir.Remark.with_handler
              (fun r -> captured_remarks := r :: !captured_remarks)
              f
        in
        let with_budget f =
          if max_steps = None && deadline_ms = None then f ()
          else
            Ir.Budget.with_budget
              (Ir.Budget.create ?max_steps ?deadline_ms ())
              f
        in
        (* action context: built when any action-framework flag is given *)
        let actx =
          if
            counters = [] && action_journal = None
            && print_ir_after_change = None
            && snapshot_after_change = None
            && provenance_path = None
          then None
          else begin
            let t =
              Ir.Action.create ~counters
                ~provenance:(provenance_path <> None) ()
            in
            (match print_ir_after_change with
            | Some tags ->
              Ir.Action.push_handler t
                (Ir.Action.snapshot_handler
                   {
                     Ir.Action.sn_tags = split_tags tags;
                     sn_mode = Ir.Action.Snap_print Fmt.stderr;
                   })
            | None -> ());
            (match snapshot_after_change with
            | Some dir ->
              Ir.Action.push_handler t
                (Ir.Action.snapshot_handler
                   {
                     Ir.Action.sn_tags = Ir.Action.default_snapshot_tags;
                     sn_mode = Ir.Action.Snap_dir dir;
                   })
            | None -> ());
            Some t
          end
        in
        let with_action f =
          match actx with
          | None -> f ()
          | Some t -> Ir.Action.with_context t f
        in
        let outcome =
          try
            with_budget (fun () ->
                with_profiler (fun () ->
                    with_remarks (fun () ->
                        with_action (fun () ->
                            Ir.Trace.with_sink sink (fun () ->
                                Result.bind (verify ()) (fun () ->
                                    Result.bind (apply_pipeline ())
                                      (fun () ->
                                        Result.bind (apply_transform ())
                                          verify)))))))
          with Sys.Break ->
            Error
              "interrupted (SIGINT): partial action journals, traces and \
               profiles were still flushed"
        in
        (match (actx, action_journal) with
        | Some t, Some path -> Ir.Action.write_journal t ~path
        | _ -> ());
        (match (actx, provenance_path) with
        | Some t, Some path -> Ir.Action.write_provenance t ~root:m ~path
        | _ -> ());
        (match (profiler, profile) with
        | Some p, Some path -> Ir.Profiler.write p ~path
        | _ -> ());
        let selected_remarks =
          match remark_kinds with
          | None -> []
          | Some kinds ->
            Ir.Remark.filter ~kinds ?filter:remark_re
              (List.rev !captured_remarks)
        in
        (* human-readable reports on stderr *)
        if not json_mode then begin
          (match (timing, !timing_tree) with
          | true, Some t ->
            Fmt.epr "// -----// timing //----- //@.%a@." Passes.Pass.pp_timing
              t;
            let deltas = op_deltas () in
            if List.exists (fun (_, d) -> d <> []) deltas then
              Fmt.epr "// -----// op-count deltas //----- //@.%a@."
                Passes.Pass.pp_op_deltas deltas
          | _ -> ());
          (match trace with
          | Some "json" -> Fmt.epr "%a@." Ir.Json.pp (Ir.Trace.to_json sink)
          | Some _ ->
            Fmt.epr "// -----// trace //----- //@.%a@." Ir.Trace.pp sink
          | None -> ());
          List.iter (fun r -> Fmt.epr "%a@." Ir.Remark.pp r) selected_remarks
        end;
        (match stats with
        | Some "json" -> Fmt.epr "%a@." Ir.Json.pp (Ir.Stats.to_json ())
        | Some _ ->
          Fmt.epr "// -----// statistics //----- //@.%a@." Ir.Stats.pp ()
        | None -> ());
        let finish result =
          if json_mode then begin
            let json =
              Ir.Json.Obj
                ([
                   ("success", Ir.Json.Bool (Result.is_ok result));
                   ( "diagnostics",
                     Ir.Json.List
                       (List.map Ir.Diag.to_json report.j_diagnostics) );
                   ("trace", Ir.Trace.to_json sink);
                 ]
                @ (match !timing_tree with
                  | Some t when timing ->
                    [ ("timing", Passes.Pass.timing_to_json t) ]
                  | _ -> [])
                @ (if timing then
                     [
                       ( "op_count_deltas",
                         Passes.Pass.op_deltas_to_json (op_deltas ()) );
                     ]
                   else [])
                @ (if stats <> None then
                     [ ("stats", Ir.Stats.to_json ()) ]
                   else [])
                @ (if remark_kinds <> None then
                     [
                       ( "remarks",
                         Ir.Json.List
                           (List.map Ir.Remark.to_json selected_remarks) );
                     ]
                   else [])
                @ (match report.j_ir_after with
                  | [] -> []
                  | snaps ->
                    [
                      ( "ir_after",
                        Ir.Json.List
                          (List.map
                             (fun (p, ir) ->
                               Ir.Json.Obj
                                 [
                                   ("pass", Ir.Json.String p);
                                   ("ir", Ir.Json.String ir);
                                 ])
                             snaps) );
                    ])
                @ [
                    ( "output",
                      match result with
                      | Ok () -> Ir.Json.String (Fmt.str "%a" Ir.Printer.pp_op m)
                      | Error _ -> Ir.Json.Null );
                  ])
            in
            Fmt.pr "%a@." Ir.Json.pp json
          end;
          match result with
          | Error e -> `Error (false, e)
          | Ok () ->
            if not json_mode then
              if pretty then Fmt.pr "%a@." Ir.Pretty.pp m
              else Fmt.pr "%a@." Ir.Printer.pp_op m;
            `Ok ()
        in
        finish outcome))

let input =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Input module ('-' for stdin).")

let pipeline =
  Arg.(
    value
    & opt (some string) None
    & info [ "pass-pipeline"; "p" ] ~docv:"PASSES"
        ~doc:"Comma-separated pass pipeline to run.")

let transform_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "transform" ] ~docv:"FILE"
        ~doc:"Transform script to interpret against the payload.")

let no_compile =
  Arg.(
    value & flag
    & info [ "no-compile" ]
        ~doc:"Apply the transform script with the sequential interpreter \
              instead of compiling it to a cached schedule. Compiled \
              schedules (the default) pre-resolve transform-op dispatch, \
              includes and pattern sets, and are cached content-addressed \
              by the script's structural fingerprint; see the \
              $(b,schedule/*) counters under $(b,--stats).")

let flow_check =
  Arg.(
    value & flag
    & info [ "flow-check" ]
        ~doc:"Gate the transform script behind the static annotation-flow \
              checker: schedules whose declared requires-clauses cannot \
              be satisfied are rejected with structured diagnostics \
              before any payload is touched. Also enables the dynamic \
              annotation checker during execution, so every declared \
              requirement is re-verified as the script runs.")

let no_verify =
  Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip IR verification.")

let list_passes =
  Arg.(value & flag & info [ "list-passes" ] ~doc:"List registered passes.")

let timing =
  Arg.(
    value & flag
    & info [ "timing" ]
        ~doc:"Print the hierarchical timing tree and per-pass op-count deltas.")

let print_ir_after_all =
  Arg.(
    value
    & opt
        ~vopt:(Some "changed")
        (some (enum [ ("changed", "changed"); ("always", "always") ]))
        None
    & info [ "print-ir-after-all" ] ~docv:"MODE"
        ~doc:"Print the IR after passes. The default $(b,changed) mode \
              skips passes that left the module structurally identical \
              (fingerprint-gated); $(b,always) dumps after every pass.")

let debug_counters =
  Arg.(
    value & opt_all string []
    & info [ "debug-counter" ] ~docv:"TAG:SKIP,COUNT"
        ~doc:"Debug counter over the action stream (repeatable): skip the \
              first $(i,SKIP) actions tagged $(i,TAG) (e.g. $(b,pattern), \
              $(b,fold), $(b,dce), $(b,transform), $(b,pass)), execute the \
              next $(i,COUNT) (omitted means all), skip the rest — MLIR \
              DebugCounter semantics, for bisecting which rewrite broke \
              the output. Forces sequential scheduling.")

let action_journal =
  Arg.(
    value
    & opt ~vopt:(Some "actions.jsonl") (some string) None
    & info [ "action-journal" ] ~docv:"PATH"
        ~doc:"Write the structured action journal to $(docv) as JSONL: one \
              line per transformation unit (pass, pattern application, \
              fold, DCE, transform dispatch, schedule compilation) with \
              tag, per-tag index, location, outcome \
              (executed/skipped/failed/reverted), duration and profiler \
              timestamp. Deterministic at any $(b,--jobs) degree.")

let print_ir_after_change =
  Arg.(
    value
    & opt ~vopt:(Some "pass,transform") (some string) None
    & info [ "print-ir-after-change" ] ~docv:"TAGS"
        ~doc:"After each action whose tag is in the comma-separated \
              $(docv) (default $(b,pass,transform)), print a line diff of \
              the functions it changed to stderr — gated on structural \
              fingerprint inequality, so actions that change nothing print \
              nothing. Forces sequential scheduling.")

let snapshot_after_change =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-after-change" ] ~docv:"DIR"
        ~doc:"After each pass/transform action that changed the module \
              (fingerprint-gated), write the changed functions to a \
              numbered .mlir snapshot under $(docv). Forces sequential \
              scheduling.")

let provenance_path =
  Arg.(
    value
    & opt ~vopt:(Some "provenance.json") (some string) None
    & info [ "provenance" ] ~docv:"PATH"
        ~doc:"Record per-op provenance — which action created, modified, \
              replaced or erased each op, fed by rewriter listener events \
              — and write it to $(docv) as JSON after the run. Query it \
              with $(b,otd-check --provenance).")

let trace =
  Arg.(
    value
    & opt
        ~vopt:(Some "text")
        (some (enum [ ("text", "text"); ("json", "json") ]))
        None
    & info [ "trace" ] ~docv:"FORMAT"
        ~doc:"Print the execution trace (transform ops, suppressed errors, \
              greedy-driver statistics, per-pass events) to stderr. \
              $(b,--trace) or $(b,--trace=text) renders the listing; \
              $(b,--trace=json) emits the trace's JSON rendering.")

let profile =
  Arg.(
    value
    & opt ~vopt:(Some "profile.json") (some string) None
    & info [ "profile" ] ~docv:"PATH"
        ~doc:"Record profiler spans (pipeline, passes, greedy driver, \
              transform-interpreter ops) and write Chrome trace-event JSON \
              to $(docv) — loadable in Perfetto (ui.perfetto.dev) or \
              chrome://tracing.")

let stats =
  Arg.(
    value
    & opt
        ~vopt:(Some "text")
        (some (enum [ ("text", "text"); ("json", "json") ]))
        None
    & info [ "stats" ] ~docv:"FORMAT"
        ~doc:"Print the global statistics registry (greedy-driver counters, \
              conversion-pass op counts, transform-interpreter handle \
              volumes) to stderr after the run, as an aligned table \
              ($(b,text), the default) or as JSON.")

let remarks =
  Arg.(
    value
    & opt (some string) None
    & info [ "remarks" ] ~docv:"KINDS"
        ~doc:"Print optimization remarks of the comma-separated $(docv) \
              ($(b,passed), $(b,missed), $(b,analysis), or $(b,all)) to \
              stderr, with payload locations.")

let remarks_filter =
  Arg.(
    value
    & opt (some string) None
    & info [ "remarks-filter" ] ~docv:"REGEX"
        ~doc:"Keep only remarks whose pass name or message matches $(docv) \
              (Str regexp syntax). Implies nothing without $(b,--remarks).")

let diagnostics_format =
  Arg.(
    value
    & opt (enum [ ("text", "text"); ("json", "json") ]) "text"
    & info [ "diagnostics" ] ~docv:"FORMAT"
        ~doc:"Diagnostics output format. With $(b,json), stdout carries a \
              single JSON object with diagnostics, trace, timing and the \
              final IR.")

let reproducer_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "reproducer" ] ~docv:"PATH"
        ~doc:"On pass failure, write a crash reproducer (pre-pass IR plus \
              the remaining pipeline) to $(docv).")

let pretty =
  Arg.(
    value & flag
    & info [ "pretty" ]
        ~doc:"Print custom assembly for common dialects (output only; the \
              parser consumes the generic form).")

let max_steps =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~docv:"N"
        ~doc:"Execution budget: abort the transform interpreter cleanly \
              (silenceable failure) after $(docv) interpreted transform \
              ops. Unset means unlimited.")

let deadline_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Execution budget: wall-clock deadline for the whole run \
              (pass pipeline, greedy rewriting and transform \
              interpretation) in milliseconds; exceeded work stops with a \
              clean diagnostic instead of hanging.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Parallelism degree for function-at-a-time pass scheduling: \
              fan per-function passes over $(docv) domains. $(b,--jobs=1) \
              runs fully sequential (no pool, no domains); $(b,--jobs=0) \
              auto-sizes to the runtime's recommended domain count. \
              Defaults to the $(b,OTD_JOBS) environment variable, else 1. \
              Output, diagnostics and exit codes are identical at every \
              degree.")

let cmd =
  let doc = "optimizer driver for the OCaml Transform-dialect reproduction" in
  Cmd.v
    (Cmd.info "otd-opt" ~doc)
    Term.(
      ret
        (const run $ input $ pipeline $ transform_file $ no_compile
       $ flow_check $ no_verify
       $ list_passes $ timing $ print_ir_after_all $ trace
       $ diagnostics_format $ reproducer_path $ pretty $ profile $ stats
       $ remarks $ remarks_filter $ max_steps $ deadline_ms $ jobs
       $ debug_counters $ action_journal $ print_ir_after_change
       $ snapshot_after_change $ provenance_path))

let () = exit (Cmd.eval cmd)
