(** otd-server: fault-isolated compilation as a service.

    A long-lived daemon accepting length-prefixed JSON compile jobs over a
    Unix-domain socket ([--socket]) or stdio ([--stdio]), executing each in
    a containment cell (per-job budget, exception barrier, crash
    reproducer) behind a content-addressed result cache with single-flight
    deduplication, bounded retry-with-backoff for budget exhaustion, and
    graceful degradation (admission queue, load shedding, drain on
    SIGTERM/SIGINT).

    Examples:
    - [otd_server --socket /tmp/otd.sock --jobs 4]
    - [otd_server --stdio < requests.bin]
    - [otd_server --self-test]  (in-process fault-injection campaign)
    - [otd_server --socket /tmp/otd.sock --client batch.jsonl]

    The protocol is documented in {!Server.Protocol} and README.md; the
    response journal written by [--journal] validates with
    [otd_json --jsonl --schema=server]. *)

open Cmdliner

let stop_requested = Atomic.make false

let install_signals () =
  (* writes to disconnected clients must error, not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let request_stop = Sys.Signal_handle (fun _ -> Atomic.set stop_requested true) in
  (try Sys.set_signal Sys.sigterm request_stop with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigint request_stop with Invalid_argument _ -> ()

let journal_hook journal =
  match journal with
  | None -> (None, fun () -> ())
  | Some path ->
    let oc = open_out path in
    let mu = Mutex.create () in
    let on_response j =
      Mutex.lock mu;
      output_string oc (Ir.Json.to_line j);
      output_char oc '\n';
      Mutex.unlock mu
    in
    (Some on_response, fun () -> close_out oc)

(* ------------------------------------------------------------------ *)
(* Serve modes                                                         *)
(* ------------------------------------------------------------------ *)

let serve_socket policy ~path ~conns ~journal =
  install_signals ();
  let engine = Server.Engine.create ~policy () in
  let on_response, close_journal = journal_hook journal in
  let listener = Server.Transport.serve_unix ?on_response engine ~path ~conns in
  Fmt.epr "otd-server: serving on %s (%d workers, %d connections)@." path
    policy.Server.Engine.p_jobs conns;
  (* wait for a signal or a client shutdown request, then drain *)
  while
    not (Atomic.get stop_requested)
    && not (Server.Engine.shutdown_requested engine)
  do
    Unix.sleepf 0.2
  done;
  Fmt.epr "otd-server: draining (in-flight jobs finish, new jobs rejected)@.";
  Server.Transport.stop_listener listener;
  Server.Engine.close engine;
  close_journal ();
  Fmt.epr "otd-server: drained, bye@.";
  `Ok ()

let serve_stdio policy ~journal =
  install_signals ();
  let engine = Server.Engine.create ~policy () in
  let on_response, close_journal = journal_hook journal in
  Server.Transport.serve_fd ?on_response engine ~in_fd:Unix.stdin
    ~out_fd:Unix.stdout;
  Server.Engine.close engine;
  close_journal ();
  `Ok ()

(* ------------------------------------------------------------------ *)
(* Client mode: replay a JSONL batch against a live daemon             *)
(* ------------------------------------------------------------------ *)

(* lines are framed as-is (even deliberately broken ones), so poisoned
   batches exercise the daemon's protocol barrier end to end; if the
   daemon hangs up (desynchronizing fault) the client reconnects *)
let run_client ~path file =
  let ic = if file = "-" then stdin else open_in file in
  let fd = ref (Server.Transport.connect_retry path) in
  let reconnect () =
    (try Unix.close !fd with Unix.Unix_error _ -> ());
    fd := Server.Transport.connect_retry path
  in
  let rec go sent =
    match input_line ic with
    | exception End_of_file -> sent
    | line when String.trim line = "" -> go sent
    | line ->
      (try Server.Protocol.write_frame !fd line
       with Unix.Unix_error _ -> reconnect (); Server.Protocol.write_frame !fd line);
      (match Server.Protocol.read_frame !fd with
      | Ok body -> print_endline body
      | Error _ -> reconnect ()
      | exception Unix.Unix_error _ -> reconnect ());
      go (sent + 1)
  in
  let sent = go 0 in
  (try Unix.close !fd with Unix.Unix_error _ -> ());
  if file <> "-" then close_in ic;
  Fmt.epr "otd-server --client: %d frames sent@." sent;
  `Ok ()

(* ------------------------------------------------------------------ *)
(* Self test: the fault-injection campaign                             *)
(* ------------------------------------------------------------------ *)

let run_self_test ~cases ~journal ~reproducer_dir =
  install_signals ();
  let s =
    Fuzz.Server_faults.run ~cases ?journal ?reproducer_dir ()
  in
  let nviol = List.length s.Fuzz.Server_faults.sf_violations in
  Fmt.pr
    "otd-server self-test: %d frames (%d poisoned), %d ok, %d contained, %d \
     invalid, %d closed, %d canaries, %d cache hits, %d reproducers, %d \
     violation%s, %.1f s@."
    s.Fuzz.Server_faults.sf_jobs s.Fuzz.Server_faults.sf_poisoned
    s.Fuzz.Server_faults.sf_ok s.Fuzz.Server_faults.sf_contained
    s.Fuzz.Server_faults.sf_invalid s.Fuzz.Server_faults.sf_closed
    s.Fuzz.Server_faults.sf_canaries s.Fuzz.Server_faults.sf_cache_hits
    s.Fuzz.Server_faults.sf_reproducers nviol
    (if nviol = 1 then "" else "s")
    s.Fuzz.Server_faults.sf_seconds;
  List.iter (Fmt.pr "  VIOLATION: %s@.") s.Fuzz.Server_faults.sf_violations;
  if nviol = 0 then `Ok ()
  else `Error (false, "server fault campaign found violations")

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

let run socket stdio client self_test cases jobs conns queue_depth max_frame
    max_steps max_rewrites deadline_ms attempts retry_scale backoff_ms
    retry_after_ms cache_capacity reproducers journal =
  Printexc.record_backtrace true;
  let d = Server.Engine.default_policy in
  let policy =
    {
      Server.Engine.p_jobs = max 1 jobs;
      p_queue_depth = max 1 queue_depth;
      p_max_frame = max 1024 max_frame;
      p_default_max_steps = d.Server.Engine.p_default_max_steps;
      p_default_max_rewrites = d.Server.Engine.p_default_max_rewrites;
      p_default_deadline_ms = d.Server.Engine.p_default_deadline_ms;
      p_clamp_max_steps = max_steps;
      p_clamp_max_rewrites = max_rewrites;
      p_clamp_deadline_ms = deadline_ms;
      p_max_attempts = max 1 attempts;
      p_retry_scale = max 2 retry_scale;
      p_backoff_ms = max 0 backoff_ms;
      p_retry_after_ms = max 1 retry_after_ms;
      p_cache_capacity = max 1 cache_capacity;
      p_reproducer_dir = reproducers;
    }
  in
  match (self_test, client, socket, stdio) with
  | Some cases_opt, _, _, _ ->
    let cases = Option.value cases_opt ~default:cases in
    run_self_test ~cases ~journal
      ~reproducer_dir:policy.Server.Engine.p_reproducer_dir
  | None, Some file, Some path, _ -> run_client ~path file
  | None, Some _, None, _ ->
    `Error (false, "--client needs --socket PATH to talk to")
  | None, None, Some path, false -> serve_socket policy ~path ~conns ~journal
  | None, None, None, true -> serve_stdio policy ~journal
  | None, None, Some _, true ->
    `Error (false, "--socket and --stdio are mutually exclusive")
  | None, None, None, false ->
    `Error (false, "pick a mode: --socket PATH, --stdio, or --self-test")

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Serve on (or, with $(b,--client), connect to) a Unix-domain \
              socket at $(docv).")

let stdio =
  Arg.(
    value & flag
    & info [ "stdio" ]
        ~doc:"Serve one connection over stdin/stdout and exit on EOF.")

let client =
  Arg.(
    value
    & opt (some string) None
    & info [ "client" ] ~docv:"FILE"
        ~doc:"Client mode: frame each line of the JSONL $(docv) ($(b,-) for \
              stdin) to the daemon at $(b,--socket), print each response \
              line to stdout. Lines are sent verbatim, so poisoned batches \
              reach the daemon's protocol barrier intact.")

let self_test =
  Arg.(
    value
    & opt ~vopt:(Some None) (some (some int)) None
    & info [ "self-test" ] ~docv:"CASES"
        ~doc:"Run the in-process server fault-injection campaign (valid \
              jobs, canaries, budget busters, crash-poisoned transforms, \
              malformed frames) and exit nonzero on any containment or \
              determinism violation.")

let cases =
  Arg.(
    value & opt int 300
    & info [ "cases" ] ~docv:"N" ~doc:"Self-test campaign size.")

let jobs =
  Arg.(
    value & opt int 2
    & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains executing jobs.")

let conns =
  Arg.(
    value & opt int 4
    & info [ "conns" ] ~docv:"N" ~doc:"Concurrent connections served.")

let queue_depth =
  Arg.(
    value & opt int 64
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:"Admitted (queued + running) job limit; excess is shed with a \
              retry_after_ms hint.")

let max_frame =
  Arg.(
    value
    & opt int Server.Protocol.default_max_frame
    & info [ "max-frame" ] ~docv:"BYTES" ~doc:"Frame size limit.")

let max_steps =
  Arg.(
    value
    & opt (some int) Server.Engine.default_policy.Server.Engine.p_clamp_max_steps
    & info [ "max-steps" ] ~docv:"N"
        ~doc:"Ceiling on per-job interpreter steps (requests are clamped).")

let max_rewrites =
  Arg.(
    value
    & opt (some int)
        Server.Engine.default_policy.Server.Engine.p_clamp_max_rewrites
    & info [ "max-rewrites" ] ~docv:"N"
        ~doc:"Ceiling on per-job greedy rewrites.")

let deadline_ms =
  Arg.(
    value
    & opt (some int)
        Server.Engine.default_policy.Server.Engine.p_clamp_deadline_ms
    & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Ceiling on per-job deadlines.")

let attempts =
  Arg.(
    value & opt int Server.Engine.default_policy.Server.Engine.p_max_attempts
    & info [ "attempts" ] ~docv:"N"
        ~doc:"Ceiling on the per-job retry allowance (budget-exhausted jobs \
              re-run at escalating budget tiers).")

let retry_scale =
  Arg.(
    value & opt int Server.Engine.default_policy.Server.Engine.p_retry_scale
    & info [ "retry-scale" ] ~docv:"N"
        ~doc:"Budget multiplier per retry tier.")

let backoff_ms =
  Arg.(
    value & opt int Server.Engine.default_policy.Server.Engine.p_backoff_ms
    & info [ "backoff-ms" ] ~docv:"MS"
        ~doc:"Base backoff between retry tiers.")

let retry_after_ms =
  Arg.(
    value
    & opt int Server.Engine.default_policy.Server.Engine.p_retry_after_ms
    & info [ "retry-after-ms" ] ~docv:"MS"
        ~doc:"Base retry-after hint on shed responses (scaled by backlog).")

let cache_capacity =
  Arg.(
    value
    & opt int Server.Engine.default_policy.Server.Engine.p_cache_capacity
    & info [ "cache" ] ~docv:"N" ~doc:"Result-cache capacity (entries).")

let reproducers =
  Arg.(
    value
    & opt (some string)
        Server.Engine.default_policy.Server.Engine.p_reproducer_dir
    & info [ "reproducers" ] ~docv:"DIR"
        ~doc:"Write crash reproducers for contained failures into $(docv).")

let journal =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:"Append every response object to $(docv) as JSON Lines \
              (validate with $(b,otd_json --jsonl --schema=server)).")

let cmd =
  let doc = "fault-isolated compilation-as-a-service daemon" in
  Cmd.v
    (Cmd.info "otd-server" ~doc)
    Term.(
      ret
        (const run $ socket $ stdio $ client $ self_test $ cases $ jobs
       $ conns $ queue_depth $ max_frame $ max_steps $ max_rewrites
       $ deadline_ms $ attempts $ retry_scale $ backoff_ms $ retry_after_ms
       $ cache_capacity $ reproducers $ journal))

let () = exit (Cmd.eval cmd)
