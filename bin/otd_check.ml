(** otd-check: the static pre-/post-condition pipeline checker of Case
    Study 2. Checks a comma-separated pass pipeline (or a transform script)
    against an initial and final op-kind set, printing the abstract trace
    and any phase-ordering / incomplete-lowering problems. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** What the schedule compiler would make of the script: compiled or
    degraded to interpretation, instruction/fallback/slot counts, the
    content-address, and any static use-after-consume diagnostics. Takes
    the already-computed schedule so [--schedule] and [--flow] describe
    the same lowering decision. *)
let pp_schedule_report s =
  Fmt.pr "@.// -----// schedule compilation //----- //@.";
  Fmt.pr "fingerprint:   %s@."
    (Ir.Fingerprint.to_hex (Transform.Schedule.fingerprint s));
  (match Transform.Schedule.interpreted_reason s with
  | None ->
    Fmt.pr "form:          compiled@.";
    Fmt.pr "instructions:  %d (%d interpreter fallbacks)@."
      (Transform.Schedule.instr_count s)
      (Transform.Schedule.fallback_count s);
    Fmt.pr "handle slots:  %d@." (Transform.Schedule.slot_count s)
  | Some reason -> Fmt.pr "form:          interpreted (%s)@." reason);
  match Transform.Schedule.static_diags s with
  | [] -> ()
  | ds ->
    Fmt.pr "static use-after-consume diagnostics:@.";
    List.iter (fun d -> Fmt.pr "  %a@." Transform.Invalidation.pp_diagnostic d) ds

(** Annotation-flow check of a transform script: per-handle property
    propagation ([requires]/[ensures] of every registered transform)
    threaded with the op-kind layer. The degradation line is derived from
    the same schedule as [--schedule], so the two flags agree on it by
    construction. *)
let pp_flow_report s ~initial ~final script =
  let r = Transform.Flowcheck.check ~initial ~final script in
  Fmt.pr "@.// -----// annotation flow //----- //@.";
  (match Transform.Schedule.interpreted_reason s with
  | None -> Fmt.pr "schedule form: compiled@."
  | Some reason -> Fmt.pr "schedule form: interpreted (%s)@." reason);
  (match r.Transform.Flowcheck.fr_final with
  | Some present -> Fmt.pr "final op kinds: %a@." Ir.Opset.pp present
  | None -> ());
  Fmt.pr "%a" Transform.Flowcheck.pp_report r;
  r

(* ------------------------------------------------------------------ *)
(* Provenance queries                                                  *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0

let str_field key j =
  match Ir.Json.member key j with
  | Some v -> Ir.Json.to_string_opt v
  | None -> None

let pp_chain chain =
  match Ir.Json.to_list chain with
  | None | Some [] -> Fmt.pr "    (no recorded events: op came from the input)@."
  | Some evs ->
    List.iter
      (fun ev ->
        let f k = Option.value ~default:"?" (str_field k ev) in
        match Ir.Json.member "action" ev with
        | Some (Ir.Json.Int idx) ->
          Fmt.pr "    %-8s by action #%d %s (%s) [%s]@." (f "kind") idx
            (f "tag") (f "desc") (f "outcome")
        | _ -> Fmt.pr "    %-8s (unattributed)@." (f "kind"))
      evs

(** Query a provenance dump written by [otd-opt --provenance]: print the
    event chain of every op whose name, location or enclosing function
    contains [query] as a substring. *)
let query_provenance ~file ~query =
  match read_file file with
  | exception Sys_error e -> `Error (false, e)
  | src -> (
    match Ir.Json.parse src with
    | Error e -> `Error (false, Fmt.str "%s: %s" file e)
    | Ok json ->
      let records section =
        match Ir.Json.member section json with
        | Some l -> Option.value ~default:[] (Ir.Json.to_list l)
        | None -> []
      in
      let matches r =
        List.exists
          (fun k ->
            match str_field k r with
            | Some s -> contains s query
            | None -> false)
          [ "op"; "loc"; "func" ]
      in
      let hits = ref 0 in
      let show ~erased r =
        incr hits;
        let f k = str_field k r in
        Fmt.pr "%s%s%s%s@."
          (Option.value ~default:"?" (f "op"))
          (match f "loc" with Some l -> " (" ^ l ^ ")" | None -> "")
          (match f "func" with Some fn -> " in " ^ fn | None -> "")
          (if erased then "  [erased]"
           else
             match f "origin" with
             | Some o -> "  origin: " ^ o
             | None -> "");
        match Ir.Json.member "chain" r with
        | Some chain -> pp_chain chain
        | None -> ()
      in
      List.iter
        (fun r -> if matches r then show ~erased:false r)
        (records "ops");
      List.iter
        (fun r -> if matches r then show ~erased:true r)
        (records "erased");
      if !hits = 0 then
        `Error (false, Fmt.str "no op matching %S in %s" query file)
      else `Ok ())

let run pipeline script_file initial final schedule flow provenance
    provenance_file =
  match provenance with
  | Some query -> query_provenance ~file:provenance_file ~query
  | None ->
  let ctx = Transform.Register.full_context () in
  let initial = Ir.Opset.parse initial in
  let final = Ir.Opset.parse final in
  let report =
    match (pipeline, script_file) with
    | Some str, _ -> (
      match Passes.Pass.parse_pipeline str with
      | Error d -> Error (Ir.Diag.to_string d)
      | Ok passes ->
        Ok (Transform.Conditions.check_passes ~initial ~final passes, None))
    | None, Some f -> (
      match Ir.Parser.parse_module (read_file f) with
      | Error e -> Error (Fmt.str "parse error: %s" e)
      | Ok script ->
        Ok
          ( Transform.Conditions.check_script ~initial ~final script,
            Some script ))
    | None, None -> Error "provide --pass-pipeline or a transform script"
  in
  match report with
  | Error e -> `Error (false, e)
  | Ok (report, script) ->
    Fmt.pr "%a" Transform.Conditions.pp_report report;
    (* one schedule shared by --schedule and --flow, so the two sections
       cannot disagree about degradation to interpreted form *)
    let sched =
      match script with
      | Some script when schedule || flow ->
        Some (Transform.Schedule.of_script ctx script)
      | _ -> None
    in
    (match (schedule, sched) with
    | true, Some s -> pp_schedule_report s
    | true, None ->
      Fmt.epr "note: --schedule needs a transform script, not a pipeline@."
    | false, _ -> ());
    let flow_report =
      match (flow, script, sched) with
      | true, Some script, Some s ->
        Some (pp_flow_report s ~initial ~final script)
      | true, _, _ ->
        Fmt.epr "note: --flow needs a transform script, not a pipeline@.";
        None
      | false, _, _ -> None
    in
    let flow_ok =
      match flow_report with
      | Some r -> Transform.Flowcheck.ok r
      | None -> true
    in
    if Transform.Conditions.ok report && flow_ok then `Ok ()
    else if not (Transform.Conditions.ok report) then
      `Error (false, "pipeline violates its conditions")
    else `Error (false, "script fails the annotation-flow check")

let pipeline =
  Arg.(
    value
    & opt (some string) None
    & info [ "pass-pipeline"; "p" ] ~docv:"PASSES"
        ~doc:"Comma-separated pass pipeline to check.")

let script_file =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"SCRIPT" ~doc:"Transform script to check instead.")

let initial =
  Arg.(
    value
    & opt string
        "{func.*, scf.*, arith.*, memref.subview, memref.load, memref.store}"
    & info [ "initial" ] ~docv:"OPSET" ~doc:"Op kinds possibly present in the input.")

let final =
  Arg.(
    value
    & opt string "{llvm.*}"
    & info [ "final" ] ~docv:"OPSET" ~doc:"Op kinds allowed after the pipeline.")

let schedule =
  Arg.(
    value & flag
    & info [ "schedule" ]
        ~doc:"Also report how the schedule compiler lowers the script: \
              compiled or degraded to interpretation, instruction and \
              interpreter-fallback counts, statically numbered handle \
              slots, and the content-address (structural fingerprint) \
              under which applications would be cached.")

let flow =
  Arg.(
    value & flag
    & info [ "flow" ]
        ~doc:"Also run the static annotation-flow checker over the \
              transform script: propagate declared payload properties \
              along handle SSA values (through includes, foreach and \
              alternatives) and report any transform whose requires-clause \
              cannot be met, plus flow-sensitive use-after-consume and \
              op-kind problems. Exits non-zero on any problem.")

let provenance =
  Arg.(
    value
    & opt (some string) None
    & info [ "provenance" ] ~docv:"QUERY"
        ~doc:"Query a provenance dump written by $(b,otd-opt --provenance) \
              instead of checking a pipeline: print the action chain \
              (created/modified/replaced/erased, by which action) of every \
              op whose name, source location or enclosing function \
              contains $(docv). Exits non-zero when nothing matches.")

let provenance_file =
  Arg.(
    value
    & opt string "provenance.json"
    & info [ "provenance-file" ] ~docv:"PATH"
        ~doc:"Provenance dump to query with $(b,--provenance).")

let cmd =
  let doc = "static pre-/post-condition checker for lowering pipelines" in
  Cmd.v
    (Cmd.info "otd-check" ~doc)
    Term.(
      ret
        (const run $ pipeline $ script_file $ initial $ final $ schedule
       $ flow $ provenance $ provenance_file))

let () = exit (Cmd.eval cmd)
