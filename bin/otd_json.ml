(** otd-json: validate JSON files with the repository's own {!Ir.Json}
    parser. Exits 0 when every input parses, 1 on the first failure — CI
    uses it to check that emitted artifacts (profiles, stats, traces,
    bench reports) are well-formed without reaching for external tools.

    With [--require KEY] the top-level value must additionally be an
    object carrying $(i,KEY) (e.g. [traceEvents] for a Chrome trace).

    With [--schema=server] every value must additionally satisfy the
    [otd-server] protocol schema ({!Server.Protocol.validate_json}):
    objects with a [kind] member are checked as requests, objects with a
    [status] member as responses. Combined with [--jsonl] this validates
    the response journals the fault campaign and CI write. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_require require path json =
  match require with
  | None -> Ok json
  | Some key -> (
    match Ir.Json.member key json with
    | Some _ -> Ok json
    | None -> Error (Fmt.str "%s: missing required key %S" path key))

let check_schema schema path json =
  match schema with
  | None -> Ok json
  | Some `Server -> (
    match Server.Protocol.validate_json json with
    | Ok () -> Ok json
    | Error e -> Error (Fmt.str "%s: schema violation: %s" path e))

let validate ?schema require path =
  match read_file path with
  | exception Sys_error e -> Error e
  | src -> (
    match Ir.Json.parse src with
    | Error e -> Error (Fmt.str "%s: %s" path e)
    | Ok json -> (
      match check_require require path json with
      | Error _ as e -> e
      | Ok json -> check_schema schema path json))

(** JSONL (e.g. the action journal of [otd-opt --action-journal]): every
    non-empty line must parse on its own; [--require] applies per line. *)
let validate_jsonl ?schema require path =
  match read_file path with
  | exception Sys_error e -> Error e
  | src ->
    let lines = String.split_on_char '\n' src in
    let rec go n = function
      | [] -> Ok (Ir.Json.Null)
      | line :: rest ->
        if String.trim line = "" then go (n + 1) rest
        else (
          match Ir.Json.parse line with
          | Error e -> Error (Fmt.str "%s:%d: %s" path n e)
          | Ok json -> (
            let at = Fmt.str "%s:%d" path n in
            match check_require require at json with
            | Error e -> Error e
            | Ok json -> (
              match check_schema schema at json with
              | Error e -> Error e
              | Ok _ -> go (n + 1) rest)))
    in
    go 1 lines

let run require schema jsonl quiet files =
  if files = [] then `Error (false, "no input files")
  else
    let rec go = function
      | [] -> `Ok ()
      | path :: rest -> (
        match
          if jsonl then validate_jsonl ?schema require path
          else validate ?schema require path
        with
        | Ok _ ->
          if not quiet then Fmt.pr "%s: ok@." path;
          go rest
        | Error e -> `Error (false, e))
    in
    go files

let require =
  Arg.(
    value
    & opt (some string) None
    & info [ "require" ] ~docv:"KEY"
        ~doc:"Require the top-level value to be an object with $(docv).")

let schema =
  Arg.(
    value
    & opt (some (enum [ ("server", `Server) ])) None
    & info [ "schema" ] ~docv:"NAME"
        ~doc:"Validate values against a protocol schema. $(b,server) \
              checks otd-server request/response objects.")

let jsonl =
  Arg.(
    value & flag
    & info [ "jsonl" ]
        ~doc:"Treat inputs as JSON Lines: every non-empty line must parse \
              as a standalone JSON value, and $(b,--require) applies to \
              each line. Use this for action journals.")

let quiet =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-file output.")

let files =
  Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc:"JSON files.")

let cmd =
  let doc = "validate JSON files with the repository's Ir.Json parser" in
  Cmd.v
    (Cmd.info "otd-json" ~doc)
    Term.(ret (const run $ require $ schema $ jsonl $ quiet $ files))

let () = exit (Cmd.eval cmd)
