(** otd-json: validate JSON files with the repository's own {!Ir.Json}
    parser. Exits 0 when every input parses, 1 on the first failure — CI
    uses it to check that emitted artifacts (profiles, stats, traces,
    bench reports) are well-formed without reaching for external tools.

    With [--require KEY] the top-level value must additionally be an
    object carrying $(i,KEY) (e.g. [traceEvents] for a Chrome trace). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let validate require path =
  match read_file path with
  | exception Sys_error e -> Error e
  | src -> (
    match Ir.Json.parse src with
    | Error e -> Error (Fmt.str "%s: %s" path e)
    | Ok json -> (
      match require with
      | None -> Ok json
      | Some key -> (
        match Ir.Json.member key json with
        | Some _ -> Ok json
        | None -> Error (Fmt.str "%s: missing required key %S" path key))))

let run require quiet files =
  if files = [] then `Error (false, "no input files")
  else
    let rec go = function
      | [] -> `Ok ()
      | path :: rest -> (
        match validate require path with
        | Ok _ ->
          if not quiet then Fmt.pr "%s: ok@." path;
          go rest
        | Error e -> `Error (false, e))
    in
    go files

let require =
  Arg.(
    value
    & opt (some string) None
    & info [ "require" ] ~docv:"KEY"
        ~doc:"Require the top-level value to be an object with $(docv).")

let quiet =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-file output.")

let files =
  Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc:"JSON files.")

let cmd =
  let doc = "validate JSON files with the repository's Ir.Json parser" in
  Cmd.v
    (Cmd.info "otd-json" ~doc)
    Term.(ret (const run $ require $ quiet $ files))

let () = exit (Cmd.eval cmd)
