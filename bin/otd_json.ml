(** otd-json: validate JSON files with the repository's own {!Ir.Json}
    parser. Exits 0 when every input parses, 1 on the first failure — CI
    uses it to check that emitted artifacts (profiles, stats, traces,
    bench reports) are well-formed without reaching for external tools.

    With [--require KEY] the top-level value must additionally be an
    object carrying $(i,KEY) (e.g. [traceEvents] for a Chrome trace). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_require require path json =
  match require with
  | None -> Ok json
  | Some key -> (
    match Ir.Json.member key json with
    | Some _ -> Ok json
    | None -> Error (Fmt.str "%s: missing required key %S" path key))

let validate require path =
  match read_file path with
  | exception Sys_error e -> Error e
  | src -> (
    match Ir.Json.parse src with
    | Error e -> Error (Fmt.str "%s: %s" path e)
    | Ok json -> check_require require path json)

(** JSONL (e.g. the action journal of [otd-opt --action-journal]): every
    non-empty line must parse on its own; [--require] applies per line. *)
let validate_jsonl require path =
  match read_file path with
  | exception Sys_error e -> Error e
  | src ->
    let lines = String.split_on_char '\n' src in
    let rec go n = function
      | [] -> Ok (Ir.Json.Null)
      | line :: rest ->
        if String.trim line = "" then go (n + 1) rest
        else (
          match Ir.Json.parse line with
          | Error e -> Error (Fmt.str "%s:%d: %s" path n e)
          | Ok json -> (
            match check_require require (Fmt.str "%s:%d" path n) json with
            | Error e -> Error e
            | Ok _ -> go (n + 1) rest))
    in
    go 1 lines

let run require jsonl quiet files =
  if files = [] then `Error (false, "no input files")
  else
    let rec go = function
      | [] -> `Ok ()
      | path :: rest -> (
        match
          if jsonl then validate_jsonl require path
          else validate require path
        with
        | Ok _ ->
          if not quiet then Fmt.pr "%s: ok@." path;
          go rest
        | Error e -> `Error (false, e))
    in
    go files

let require =
  Arg.(
    value
    & opt (some string) None
    & info [ "require" ] ~docv:"KEY"
        ~doc:"Require the top-level value to be an object with $(docv).")

let jsonl =
  Arg.(
    value & flag
    & info [ "jsonl" ]
        ~doc:"Treat inputs as JSON Lines: every non-empty line must parse \
              as a standalone JSON value, and $(b,--require) applies to \
              each line. Use this for action journals.")

let quiet =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-file output.")

let files =
  Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc:"JSON files.")

let cmd =
  let doc = "validate JSON files with the repository's Ir.Json parser" in
  Cmd.v
    (Cmd.info "otd-json" ~doc)
    Term.(ret (const run $ require $ jsonl $ quiet $ files))

let () = exit (Cmd.eval cmd)
