(** otd-fuzz: property-based fuzzing and differential testing of the
    whole compiler stack.

    Generates seeded, deterministic, well-typed payload modules and checks
    four oracle families over each one: print→parse→print fixpoint,
    verifier acceptance, clone equivalence, and differential execution of
    [main] before/after each registered pass pipeline. Failures are
    greedily minimized and written as crash-reproducer [.mlir] files that
    [otd-opt] can replay.

    Examples:
    - [otd_fuzz --seed 42 --cases 500]
    - [otd_fuzz --seed 7 --cases 100 --pipeline canonicalize,cse]
    - [otd_fuzz --case 3127 --seed 9 --print] (dump one generated module) *)

open Cmdliner

let run_faults ctx config seed cases prob out_dir quiet =
  let on_case i ~failed =
    if not quiet then
      if failed then Fmt.epr "case %d: fault injected@." i
      else if i mod 50 = 0 then Fmt.epr "case %d...@." i
  in
  let stats =
    Fuzz.Fault.run_campaign ~config ~prob ?out_dir ~on_case ctx ~seed ~cases
      ()
  in
  let nviol = List.length stats.Fuzz.Fault.fs_violations in
  Fmt.pr
    "otd-fuzz faults: %d cases, %d faults injected (%d cases faulted, %d \
     raising), %d byte-identical rollbacks verified, %d violation%s, %.1f s \
     (seed %d, p=%.2f)@."
    stats.Fuzz.Fault.fs_cases stats.Fuzz.Fault.fs_injected
    stats.Fuzz.Fault.fs_faulted_cases stats.Fuzz.Fault.fs_raised
    stats.Fuzz.Fault.fs_rollbacks_verified nviol
    (if nviol = 1 then "" else "s")
    stats.Fuzz.Fault.fs_seconds seed prob;
  List.iter
    (fun v ->
      Fmt.pr "  case %d [%s, %s]: %s%a@." v.Fuzz.Fault.v_case
        v.Fuzz.Fault.v_scenario v.Fuzz.Fault.v_mode v.Fuzz.Fault.v_detail
        (fun fmt -> function
          | Some p -> Fmt.pf fmt " -> %s" p
          | None -> ())
        v.Fuzz.Fault.v_path)
    stats.Fuzz.Fault.fs_violations;
  if nviol = 0 then `Ok ()
  else `Error (false, "fault injection found recovery-invariant violations")

let run_server_faults cases out_dir =
  let s = Fuzz.Server_faults.run ~cases ?reproducer_dir:out_dir () in
  let nviol = List.length s.Fuzz.Server_faults.sf_violations in
  Fmt.pr
    "otd-fuzz server-faults: %d frames (%d poisoned), %d ok, %d contained, \
     %d invalid, %d closed, %d canaries, %d cache hits, %d reproducers, %d \
     violation%s, %.1f s@."
    s.Fuzz.Server_faults.sf_jobs s.Fuzz.Server_faults.sf_poisoned
    s.Fuzz.Server_faults.sf_ok s.Fuzz.Server_faults.sf_contained
    s.Fuzz.Server_faults.sf_invalid s.Fuzz.Server_faults.sf_closed
    s.Fuzz.Server_faults.sf_canaries s.Fuzz.Server_faults.sf_cache_hits
    s.Fuzz.Server_faults.sf_reproducers nviol
    (if nviol = 1 then "" else "s")
    s.Fuzz.Server_faults.sf_seconds;
  List.iter (Fmt.pr "  VIOLATION: %s@.") s.Fuzz.Server_faults.sf_violations;
  if nviol = 0 then `Ok ()
  else `Error (false, "server fault campaign found violations")

let run_flow_diff ctx config seed cases out_dir quiet =
  let on_case i ~failed =
    if not quiet then
      if failed then Fmt.epr "case %d: DIVERGENCE@." i
      else if i mod 50 = 0 then Fmt.epr "case %d...@." i
  in
  let stats =
    Fuzz.Driver.run_flow_diff ~config ?out_dir ~on_case ctx ~seed ~cases ()
  in
  let count c =
    match Ir.Stats.find_counter ~component:"fuzz" c with
    | Some c -> Ir.Stats.value c
    | None -> 0
  in
  let nfail = List.length stats.Fuzz.Driver.s_failures in
  Fmt.pr
    "otd-fuzz flow-diff: %d cases (%d statically accepted, %d rejected), %d \
     divergence%s, %.1f s (seed %d)@."
    stats.Fuzz.Driver.s_cases (count "flow_accepted") (count "flow_rejected")
    nfail
    (if nfail = 1 then "" else "s")
    stats.Fuzz.Driver.s_seconds seed;
  List.iter
    (fun r ->
      Fmt.pr "  case %d: %a%a@." r.Fuzz.Driver.r_case Fuzz.Oracle.pp_failure
        r.Fuzz.Driver.r_failure
        (fun fmt -> function
          | Some p -> Fmt.pf fmt " -> %s" p
          | None -> ())
        r.Fuzz.Driver.r_path)
    stats.Fuzz.Driver.s_failures;
  if nfail = 0 then `Ok ()
  else
    `Error
      (false, "static annotation-flow checker diverged from the dynamic one")

let run_schedule_diff ctx config seed cases quiet =
  let on_case i ~failed =
    if not quiet then
      if failed then Fmt.epr "case %d: DIVERGENCE@." i
      else if i mod 50 = 0 then Fmt.epr "case %d...@." i
  in
  let stats =
    Fuzz.Driver.run_schedule_diff ~config ~on_case ctx ~seed ~cases ()
  in
  let nfail = List.length stats.Fuzz.Driver.s_failures in
  Fmt.pr
    "otd-fuzz schedule-diff: %d cases, %d divergence%s, %.1f s (seed %d)@."
    stats.Fuzz.Driver.s_cases nfail
    (if nfail = 1 then "" else "s")
    stats.Fuzz.Driver.s_seconds seed;
  List.iter
    (fun r ->
      Fmt.pr "  case %d: %a@." r.Fuzz.Driver.r_case Fuzz.Oracle.pp_failure
        r.Fuzz.Driver.r_failure)
    stats.Fuzz.Driver.s_failures;
  if nfail = 0 then `Ok ()
  else `Error (false, "compiled and interpreted schedules diverged")

(* [Some 0] auto-sizes; [None] keeps OTD_JOBS (or sequential) *)
let apply_jobs = function
  | None -> Ok ()
  | Some 0 -> Ok (Ir.Pool.set_jobs (Ir.Pool.default_jobs ()))
  | Some n when n >= 1 -> Ok (Ir.Pool.set_jobs n)
  | Some n -> Error (Fmt.str "--jobs must be >= 0 (got %d)" n)

let run seed cases max_ops max_depth pipeline no_shrink no_bisect out_dir
    print_case quiet profile faults schedule_diff flow_diff server_faults
    jobs =
  Printexc.record_backtrace true;
  (* SIGINT raises Sys.Break: campaigns stop at the next case boundary
     with a clean diagnostic (reproducers written so far stay on disk)
     instead of a bare backtrace *)
  Sys.catch_break true;
  try
  match apply_jobs jobs with
  | Error e -> `Error (false, e)
  | Ok () ->
  if server_faults then run_server_faults cases out_dir
  else
  let ctx = Transform.Register.full_context () in
  let config = { Fuzz.Gen.default_config with max_ops; max_depth } in
  match print_case with
  | Some case ->
    let m = Fuzz.Driver.module_for ~config ~seed ~case () in
    Fmt.pr "%a@." Ir.Printer.pp_op m;
    `Ok ()
  | None ->
    if flow_diff then run_flow_diff ctx config seed cases out_dir quiet
    else if schedule_diff then run_schedule_diff ctx config seed cases quiet
    else (
    match faults with
    | Some prob when prob < 0.0 || prob > 1.0 ->
      `Error (false, "--faults probability must be within [0, 1]")
    | Some prob -> run_faults ctx config seed cases prob out_dir quiet
    | None ->
    let pipelines =
      match pipeline with
      | Some p -> [ p ]
      | None -> Fuzz.Oracle.default_pipelines
    in
    let on_case i ~failed =
      if not quiet then
        if failed then Fmt.epr "case %d: FAIL@." i
        else if i mod 50 = 0 then Fmt.epr "case %d...@." i
    in
    let profiler = Option.map (fun _ -> Ir.Profiler.create ()) profile in
    let with_profiler f =
      match profiler with
      | None -> f ()
      | Some p -> Ir.Profiler.with_profiler p f
    in
    let stats_r =
      try
        Ok
          (with_profiler (fun () ->
               Fuzz.Driver.run ~config ~pipelines ~shrink:(not no_shrink)
                 ~bisect:(not no_bisect) ?out_dir ~on_case ctx ~seed ~cases ()))
      with Sys.Break -> Error ()
    in
    (* the profiler trace flushes even on an interrupted campaign *)
    (match (profiler, profile) with
    | Some p, Some path -> Ir.Profiler.write p ~path
    | _ -> ());
    match stats_r with
    | Error () ->
      `Error
        ( false,
          "interrupted (SIGINT): partial profiler trace flushed; crash \
           reproducers written so far remain in --out" )
    | Ok stats ->
    let nfail = List.length stats.Fuzz.Driver.s_failures in
    Fmt.pr "otd-fuzz: %d cases, %d failure%s, %.1f s (seed %d)@."
      stats.Fuzz.Driver.s_cases nfail
      (if nfail = 1 then "" else "s")
      stats.Fuzz.Driver.s_seconds seed;
    List.iter
      (fun r ->
        Fmt.pr "  case %d: %a%a%a@." r.Fuzz.Driver.r_case
          Fuzz.Oracle.pp_failure r.Fuzz.Driver.r_failure
          (fun fmt -> function
            | Some c -> Fmt.pf fmt " [bisected: %a]" Fuzz.Bisect.pp_culprit c
            | None -> ())
          r.Fuzz.Driver.r_culprit
          (fun fmt -> function
            | Some p -> Fmt.pf fmt " -> %s" p
            | None -> ())
          r.Fuzz.Driver.r_path)
      stats.Fuzz.Driver.s_failures;
    if nfail = 0 then `Ok () else `Error (false, "fuzzing found failures"))
  with Sys.Break ->
    `Error (false, "interrupted (SIGINT): campaign stopped cleanly")

let schedule_diff =
  Arg.(
    value & flag
    & info [ "schedule-diff" ]
        ~doc:
          "Run the schedule-differential campaign instead of the oracle \
           suite: each case applies a transform script to the generated \
           module both through the sequential interpreter and through a \
           freshly compiled schedule, and requires identical outcomes and \
           byte-identical payload IR.")

let flow_diff =
  Arg.(
    value & flag
    & info [ "flow-diff" ]
        ~doc:
          "Run the flow-differential campaign instead of the oracle suite: \
           each case generates a random transform script alongside the \
           payload module and checks that any script the static \
           annotation-flow checker accepts never fails a dynamic \
           annotation-requirement check, interpreted or compiled. \
           Divergence reproducers (the scripts) go to $(b,--out).")

let server_faults =
  Arg.(
    value & flag
    & info [ "server-faults" ]
        ~doc:
          "Run the server fault-injection campaign instead of the oracle \
           suite: boot an in-process $(b,otd-server) daemon on a Unix \
           socket and drive it with a mix of valid jobs, byte-identity \
           canaries, budget busters, crash-poisoned transforms and \
           malformed frames ($(b,--cases) frames total), asserting zero \
           daemon deaths, zero cross-request contamination and a \
           reproducer per contained failure. Reproducers go to $(b,--out).")

let seed =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")

let cases =
  Arg.(
    value & opt int 100
    & info [ "cases" ] ~docv:"N" ~doc:"Number of cases to run.")

let max_ops =
  Arg.(
    value
    & opt int Fuzz.Gen.default_config.Fuzz.Gen.max_ops
    & info [ "max-ops" ] ~docv:"N" ~doc:"Op budget per generated function.")

let max_depth =
  Arg.(
    value
    & opt int Fuzz.Gen.default_config.Fuzz.Gen.max_depth
    & info [ "max-depth" ] ~docv:"N" ~doc:"Maximum region-nesting depth.")

let pipeline =
  Arg.(
    value
    & opt (some string) None
    & info [ "pipeline" ] ~docv:"PASSES"
        ~doc:
          "Restrict the differential oracle to this comma-separated \
           pipeline (default: a built-in set ending with the full \
           Case-Study-2 lowering).")

let no_shrink =
  Arg.(
    value & flag
    & info [ "no-shrink" ] ~doc:"Report failures without minimizing them.")

let shrink =
  (* --shrink is the default; the flag exists so scripts can be explicit *)
  Arg.(value & flag & info [ "shrink" ] ~doc:"Minimize failures (default).")

let no_bisect =
  Arg.(
    value & flag
    & info [ "no-bisect" ]
        ~doc:
          "Skip the action-counter bisection of differential failures. By \
           default each minimized differential failure is replayed under \
           debug counters to name the exact transformation unit (e.g. \
           $(b,pattern index 12 of 40)) whose inclusion flips the outcome; \
           the result is recorded in the reproducer header. Each bisection \
           costs O(log n) pipeline replays.")

let out_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:"Write minimized crash reproducers into $(docv).")

let print_case =
  Arg.(
    value
    & opt (some int) None
    & info [ "print" ] ~docv:"CASE"
        ~doc:"Print the module generated for (seed, $(docv)) and exit.")

let quiet =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-case progress.")

let profile =
  Arg.(
    value
    & opt ~vopt:(Some "fuzz_profile.json") (some string) None
    & info [ "profile" ] ~docv:"PATH"
        ~doc:"Profile the campaign (pipeline/pass/greedy spans across all \
              cases) and write Chrome trace-event JSON to $(docv).")

let faults =
  Arg.(
    value
    & opt ~vopt:(Some 0.2) (some float) None
    & info [ "faults" ] ~docv:"P"
        ~doc:
          "Run the fault-injection campaign instead of the oracle suite: \
           registered transforms fail or raise $(i,after) mutating the \
           payload with probability $(docv) per application, and every \
           case asserts the recovery invariants (byte-identical rollback, \
           verifier-clean IR, contained exceptions).")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Fan campaign cases over $(docv) domains. $(b,--jobs=1) runs \
              fully sequential (no pool); $(b,--jobs=0) auto-sizes to the \
              runtime's recommended domain count. Defaults to $(b,OTD_JOBS), \
              else 1. Failures, reproducers and case order are identical at \
              every degree.")

let cmd =
  let doc = "property-based IR fuzzer and differential tester" in
  Cmd.v
    (Cmd.info "otd-fuzz" ~doc)
    Term.(
      ret
        (const
           (fun seed cases max_ops max_depth pipeline no_shrink _shrink
                no_bisect out_dir print_case quiet profile faults
                schedule_diff flow_diff server_faults jobs ->
             run seed cases max_ops max_depth pipeline no_shrink no_bisect
               out_dir print_case quiet profile faults schedule_diff
               flow_diff server_faults jobs)
        $ seed $ cases $ max_ops $ max_depth $ pipeline $ no_shrink $ shrink
        $ no_bisect $ out_dir $ print_case $ quiet $ profile $ faults
        $ schedule_diff $ flow_diff $ server_faults $ jobs))

let () = exit (Cmd.eval cmd)
