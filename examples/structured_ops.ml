(** Structured operations: driving Linalg-level transforms from a Transform
    script (the paper's Section 2.1 setting — tiling of structured ops is
    what originally motivated the Transform dialect).

    Starting from a single [linalg.matmul], the script tiles it into an scf
    loop nest over [memref.subview]s, then tries the microkernel on the
    inner tile with lowering-to-loops as the fallback alternative.

    Run with: dune exec examples/structured_ops.exe *)

open Ir

let m, n, k = (128, 96, 64)

let script ~tile =
  Transform.Build.script (fun rw root ->
      let mm = Transform.Build.match_op rw ~name:"linalg.matmul" root in
      let _loops, inner =
        Transform.Build.structured_tile rw ~sizes:[ tile; tile; 0 ] mm
      in
      Transform.Build.alternatives rw
        [
          (fun brw ->
            Transform.Build.structured_to_library brw ~library:"libxsmm" inner);
          (fun brw -> Transform.Build.structured_to_loops brw inner);
        ])

let run ~tile =
  let ctx = Transform.Register.full_context () in
  let md = Workloads.Matmul.build_linalg_module ~m ~n ~k () in
  (match Transform.Schedule.run ctx ~script:(script ~tile) ~payload:md with
  | Ok _ -> ()
  | Error e -> failwith (Transform.Terror.to_string e));
  Verifier.verify_or_fail ctx md;
  let used_library = Symbol.collect_ops ~op_name:"func.call" md <> [] in
  match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
  | Error e -> failwith e
  | Ok (a, b, c_init, c_out, report) ->
    let expected = Workloads.Matmul.reference ~m ~n ~k a b c_init in
    let ok = Workloads.Matmul.max_abs_diff expected c_out < 1e-3 in
    (md, used_library, report.Interp.Machine.r_seconds, ok)

let () =
  Fmt.pr "linalg.matmul %dx%dx%d, tiled at the structured-op level@.@." m n k;
  let md32, lib32, t32, ok32 = run ~tile:32 in
  Fmt.pr "tile 32: %s, simulated %.5f s, correct: %b@."
    (if lib32 then "microkernel" else "loop fallback")
    t32 ok32;
  let _md66, lib66, t66, ok66 = run ~tile:8 in
  Fmt.pr "tile  8: %s, simulated %.5f s, correct: %b@.@."
    (if lib66 then "microkernel" else "loop fallback")
    t66 ok66;
  Fmt.pr "=== IR after tile-32 + to_library ===@.%a@." Pretty.pp md32
