(** Profiling a schedule: the observability layer end to end.

    1. Lowers the squeezenet model to the canonicalize input (the Table-1
       TOSA pipeline with its trailing cleanup stripped), then profiles a
       [canonicalize,cse] run — writing Chrome trace-event JSON that
       Perfetto (ui.perfetto.dev) or [chrome://tracing] renders as a flame
       graph: pipeline → pass → greedy driver, with worklist-size counter
       samples.
    2. Prints the global statistics registry the run populated (greedy
       match attempts, worklist pushes, folds, ...).
    3. Collects optimization remarks from the Case-Study-4 microkernel
       script over two parsed matmul payloads: libxsmm accepts the 24x16x8
       nest ([Passed]) and declines the 96x16x8 one ([Missed]) — both
       remarks carry the payload's source location from the [loc(...)]
       attribute in the .mlir file.

    The same data is available from the CLI:
      otd_opt _artifacts/squeezenet_lowered.mlir -p canonicalize,cse \
        --profile=profile.json --stats --remarks=all

    Run from the repository root: dune exec examples/profiling.exe *)

open Ir

let ctx = Transform.Register.full_context ()

let parse_pipeline str =
  match Passes.Pass.parse_pipeline str with
  | Ok ps -> ps
  | Error e -> failwith (Diag.to_string e)

(* squeezenet lowered to the exact IR the canonicalize pass runs on *)
let squeezenet_lowered () =
  let spec =
    List.find
      (fun s -> s.Workloads.Models.sp_name = "squeezenet")
      Workloads.Models.paper_models
  in
  let prefix =
    parse_pipeline Workloads.Models.tosa_pipeline_str
    |> List.filter (fun p ->
           p.Passes.Pass.name <> "canonicalize" && p.Passes.Pass.name <> "cse")
  in
  let md = Workloads.Models.build spec in
  (match Passes.Pass.run_pipeline ctx prefix md with
  | Ok _ -> ()
  | Error e -> failwith (Diag.to_string e));
  md

(* the Case-Study-4 shape: try the microkernel, fall back to leaving the
   loops alone when the library has no matching kernel *)
let remarks_script () =
  Transform.Build.script (fun rw root ->
      let loop =
        Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root
      in
      Transform.Build.alternatives rw
        [
          (fun brw -> Transform.Build.to_library brw ~library:"libxsmm" loop);
          (fun _ -> ());
        ])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_payload path =
  match Parser.parse_module (read_file path) with
  | Ok m -> m
  | Error e -> failwith (Fmt.str "%s: parse error: %s" path e)

let () =
  (* --- 1. profile canonicalize,cse on lowered squeezenet ------------- *)
  let md = squeezenet_lowered () in
  (* bulky artifacts go under the gitignored _artifacts/ *)
  (try Sys.mkdir "_artifacts" 0o755 with Sys_error _ -> ());
  let mlir_path = Filename.concat "_artifacts" "squeezenet_lowered.mlir" in
  let oc = open_out mlir_path in
  output_string oc (Printer.op_to_string md);
  output_string oc "\n";
  close_out oc;
  let p = Profiler.create () in
  Profiler.with_profiler p (fun () ->
      match
        Passes.Pass.run_pipeline ctx (parse_pipeline "canonicalize,cse") md
      with
      | Ok _ -> ()
      | Error e -> failwith (Diag.to_string e));
  let profile_path =
    Filename.concat "_artifacts" "squeezenet_canonicalize_profile.json"
  in
  Profiler.write p ~path:profile_path;
  Fmt.pr "=== profile: canonicalize,cse on lowered squeezenet ===@.";
  Fmt.pr "wrote %s (%d spans, max depth %d) — load it at ui.perfetto.dev@."
    profile_path (Profiler.span_count p) (Profiler.max_depth p);
  Fmt.pr "payload written to %s; the CLI equivalent is:@." mlir_path;
  Fmt.pr
    "  otd_opt %s -p canonicalize,cse --profile=%s --stats --remarks=all@.@."
    mlir_path profile_path;

  (* --- 2. optimization remarks from the microkernel script ----------- *)
  let remarks = ref [] in
  Remark.with_handler
    (fun r -> remarks := r :: !remarks)
    (fun () ->
      List.iter
        (fun path ->
          let payload = parse_payload path in
          match
            Transform.Schedule.run ctx ~script:(remarks_script ()) ~payload
          with
          | Ok _ -> ()
          | Error e -> failwith (Transform.Terror.to_string e))
        [
          "examples/scripts/payload_matmul.mlir";
          "examples/scripts/payload_matmul_large.mlir";
        ]);
  Fmt.pr "=== optimization remarks (otd_opt --remarks=all) ===@.";
  List.iter (fun r -> Fmt.pr "%a@." Remark.pp r) (List.rev !remarks);
  Fmt.pr
    "@.the microkernel's decline is a silenceable error the alternatives op \
     suppressed — visible above as the [missed] remark and in the \
     transform/silenceable_suppressed statistic below.@.@.";

  (* --- 3. the statistics both runs populated ------------------------- *)
  Fmt.pr "=== global statistics registry (otd_opt --stats) ===@.";
  Fmt.pr "%a@." Stats.pp ()
