"builtin.module"() ({
  "func.func"() ({
  ^bb0(%A: memref<96x8xf32>, %B: memref<8x16xf32>, %C: memref<96x16xf32>):
    %c0 = "arith.constant"() {value = 0 : index} : () -> index
    %c1 = "arith.constant"() {value = 1 : index} : () -> index
    %cm = "arith.constant"() {value = 96 : index} : () -> index
    %cn = "arith.constant"() {value = 16 : index} : () -> index
    %ck = "arith.constant"() {value = 8 : index} : () -> index
    "scf.for"(%c0, %cm, %c1) ({
    ^bb1(%i: index):
      "scf.for"(%c0, %cn, %c1) ({
      ^bb2(%j: index):
        "scf.for"(%c0, %ck, %c1) ({
        ^bb3(%k: index):
          %a = "memref.load"(%A, %i, %k) : (memref<96x8xf32>, index, index) -> f32
          %b = "memref.load"(%B, %k, %j) : (memref<8x16xf32>, index, index) -> f32
          %c = "memref.load"(%C, %i, %j) : (memref<96x16xf32>, index, index) -> f32
          %p = "arith.mulf"(%a, %b) : (f32, f32) -> f32
          %s = "arith.addf"(%c, %p) : (f32, f32) -> f32
          "memref.store"(%s, %C, %i, %j) : (f32, memref<96x16xf32>, index, index) -> ()
          "scf.yield"() : () -> ()
        }) : (index, index, index) -> ()
        "scf.yield"() : () -> ()
      }) : (index, index, index) -> ()
      "scf.yield"() : () -> ()
    }) : (index, index, index) -> () loc("payload_matmul_large.mlir":9:5)
    "func.return"() : () -> ()
  }) {sym_name = "matmul_large", function_type = (memref<96x8xf32>, memref<8x16xf32>, memref<96x16xf32>) -> ()} : () -> ()
}) : () -> ()
