"builtin.module"() ({
  "transform.named_sequence"() ({
  ^bb0(%root: !transform.any_op):
    %loop = "transform.match_op"(%root) {op_name = "scf.for", select = "first"} : (!transform.any_op) -> !transform.any_op
    %size = "transform.param_constant"() {value = 8 : index} : () -> !transform.param
    %part:2 = "transform.loop_split"(%loop, %size) : (!transform.any_op, !transform.param) -> (!transform.any_op, !transform.any_op)
    %tiled:2 = "transform.loop_tile"(%part#0, %size) : (!transform.any_op, !transform.param) -> (!transform.any_op, !transform.any_op)
    "transform.loop_unroll"(%part#1) {full} : (!transform.any_op) -> ()
    "transform.yield"() : () -> ()
  }) {sym_name = "__transform_main"} : () -> ()
}) : () -> ()
