(** Case Study 4: fine-grained control of a matmul loop nest — OpenMP-style
    tiling vs the Transform dialect's split+tile+unroll, plus the
    alternatives-wrapped microkernel replacement.

    Run with: dune exec examples/microkernel.exe *)

open Ir

let () =
  let ctx = Transform.Register.full_context () in
  let o = Experiments.Cs4.run ctx in
  Experiments.Cs4.pp_outcome Fmt.stdout o;
  (* show the transformed IR of the microkernel variant *)
  let md =
    Workloads.Matmul.build_module ~m:Experiments.Cs4.m ~n:Experiments.Cs4.n
      ~k:Experiments.Cs4.k ()
  in
  (match
     Transform.Schedule.run ctx
       ~script:(Experiments.Cs4.microkernel_script ())
       ~payload:md
   with
  | Ok _ -> ()
  | Error e -> failwith (Transform.Terror.to_string e));
  Fmt.pr "@.=== IR after split + tile + to_library (excerpt) ===@.";
  let calls = Symbol.collect_ops ~op_name:"func.call" md in
  List.iteri
    (fun i call ->
      if i < 1 then
        Fmt.pr "%a@." Printer.pp_op
          (Option.get (Ircore.parent_op call)))
    calls
