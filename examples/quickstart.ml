(** Quickstart: the paper's Figure 1 worked example.

    We build a payload with loop-invariant code and an inner loop with an
    uneven trip count, then drive the compiler with a Transform script that
    hoists, splits, tiles and unrolls — and finally show how the *static*
    invalidation analysis rejects a script that unrolls the same loop twice
    (Figure 1a line 11).

    Run with: dune exec examples/quickstart.exe *)

open Ir
open Dialects

(* payload: loop-invariant constants inside an outer loop, an uneven inner
   loop (trip count 2042 = 255*8 + 2) — the shape of Figure 1b *)
let build_payload () =
  let md = Builtin.create_module () in
  let mt = Typ.memref (Typ.static_dims [ 4096; 4096 ]) Typ.f32 in
  let fop, entry =
    Func.create ~name:"myFunc" ~arg_types:[ mt ] ~result_types:[] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) fop;
  let values = Ircore.block_arg entry 0 in
  let rw = Dutil.rw_at_end entry in
  let zero = Dutil.const_int rw 0 in
  let one = Dutil.const_int rw 1 in
  let cn = Dutil.const_int rw 64 in
  ignore
    (Scf.build_for rw ~lb:zero ~ub:cn ~step:one (fun rwj j _ ->
         (* loop-invariant work, to be hoisted *)
         let c1 = Dutil.const_int rwj 1 in
         let inner_ub = Dutil.const_int rwj 42 in
         ignore
           (Scf.build_for rwj ~lb:zero ~ub:inner_ub ~step:one (fun rwi i _ ->
                let v = Memref.load rwi values [ c1; i ] in
                let v2 = Arith.addf rwi v v in
                Memref.store rwi v2 values [ j; i ];
                []));
         []));
  Func.return rw ();
  md

let fig1a_script () =
  Transform.Build.script (fun rw func ->
      (* %outer = match.op "scf.for" {first} in %func *)
      let outer = Transform.Build.match_op rw ~select:"first" ~name:"scf.for" func in
      (* %hoisted = loop.hoist from %outer *)
      let _hoisted = Transform.Build.loop_hoist rw outer in
      (* %inner = match.op "scf.for" {first} in %outer *)
      let inner = Transform.Build.match_op rw ~select:"first" ~name:"scf.for" outer in
      (* %param = param.constant 8 ; %part:2 = loop.split %inner ub_div_by=%param *)
      let param = Transform.Build.param_constant rw 8 in
      let part1, part2 =
        Transform.Build.loop_split rw ~div_by_param:param ~div_by:8 inner
      in
      (* %tiled:2 = loop.tile %part#1 tile_sizes=[%param] *)
      ignore (Transform.Build.loop_tile rw ~size_params:[ param ] ~sizes:[] part1);
      (* %unrolled = loop.unroll %part#2 {full} *)
      Transform.Build.loop_unroll_full rw part2)

(* Figure 1a *with* the deliberate error in line 11: a second unroll of the
   already-consumed %part#2 handle *)
let fig1a_script_with_error () =
  Transform.Build.script (fun rw func ->
      let inner = Transform.Build.match_op rw ~select:"second" ~name:"scf.for" func in
      let _p1, part2 = Transform.Build.loop_split rw ~div_by:8 inner in
      Transform.Build.loop_unroll_full rw part2;
      (* line 11: this statically reports an error! *)
      Transform.Build.loop_unroll_full rw part2)

let () =
  let ctx = Transform.Register.full_context () in
  let payload = build_payload () in
  Fmt.pr "=== initial payload (Figure 1b) ===@.%a@.@." Pretty.pp payload;

  (* static analyses on the scripts first *)
  let bad = fig1a_script_with_error () in
  (match Transform.Invalidation.analyze bad with
  | [] -> Fmt.pr "unexpected: no invalidation error found@."
  | diags ->
    Fmt.pr "=== static invalidation analysis on the faulty script ===@.";
    List.iter
      (fun d -> Fmt.pr "  %a@." Transform.Invalidation.pp_diagnostic d)
      diags;
    Fmt.pr "@.");

  let script = fig1a_script () in
  (match Transform.Invalidation.analyze script with
  | [] -> Fmt.pr "good script: no static invalidation errors@.@."
  | _ -> Fmt.pr "unexpected diagnostics on the good script@.");

  (* interpret the good script *)
  (match Transform.Schedule.run ctx ~script ~payload with
  | Ok steps -> Fmt.pr "transform interpreter: %d steps@.@." steps
  | Error e -> Fmt.pr "transform failed: %s@." (Transform.Terror.to_string e));
  Verifier.verify_or_fail ctx payload;
  Fmt.pr "=== transformed payload (Figure 1c) ===@.%a@." Pretty.pp payload
