(* Dialect definitions: builders, folders, opset algebra, shlo patterns. *)

open Ir
open Dialects

let ctx = Transform.Register.full_context ()
let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* ------------------------------------------------------------------ *)
(* registration coverage                                               *)
(* ------------------------------------------------------------------ *)

let test_all_dialects_registered () =
  let dialects = Context.registered_dialects ctx in
  List.iter
    (fun d ->
      check cb (Fmt.str "dialect %s registered" d) true (List.mem d dialects))
    [
      "builtin"; "func"; "arith"; "index"; "scf"; "cf"; "memref"; "affine";
      "llvm"; "vector"; "tosa"; "linalg"; "shlo"; "tensor"; "math"; "transform";
    ]

let test_traits () =
  check cb "module is symbol table" true
    (Context.has_trait ctx "builtin.module" Context.Symbol_table);
  check cb "func is isolated" true
    (Context.has_trait ctx "func.func" Context.Isolated_from_above);
  check cb "yield is terminator" true
    (Context.has_trait ctx "scf.yield" Context.Terminator);
  check cb "addi commutative" true
    (Context.has_trait ctx "arith.addi" Context.Commutative);
  check cb "constant is constant-like" true
    (Context.has_trait ctx "arith.constant" Context.Constant_like)

let test_effects () =
  let rw = Dutil.rw_detached () in
  let m =
    Memref.alloc rw (Typ.memref (Typ.static_dims [ 4 ]) Typ.f32)
  in
  let alloc_op = Option.get (Ircore.defining_op m) in
  check cb "alloc has Alloc effect" true
    (List.mem Context.Alloc (Context.effects ctx alloc_op));
  let i = Dutil.const_int rw 0 in
  let v = Memref.load rw m [ i ] in
  let load_op = Option.get (Ircore.defining_op v) in
  check cb "load reads" true (List.mem Context.Read (Context.effects ctx load_op));
  check cb "load is not pure" false (Context.is_pure ctx load_op);
  check cb "constant is pure" true
    (Context.is_pure ctx (Option.get (Ircore.defining_op i)))

(* ------------------------------------------------------------------ *)
(* folders                                                             *)
(* ------------------------------------------------------------------ *)

let fold_of name operands =
  match Context.interface ctx name Context.folder_key with
  | Some { Context.fold } ->
    let op = Ircore.create ~result_types:[ Typ.i64 ] name in
    fold op operands
  | None -> None

let test_arith_folders () =
  check cb "addi" true
    (fold_of "arith.addi" [ Some (Attr.int 2); Some (Attr.int 3) ]
    = Some [ Attr.int 5 ]);
  check cb "muli" true
    (fold_of "arith.muli" [ Some (Attr.int 6); Some (Attr.int 7) ]
    = Some [ Attr.int 42 ]);
  check cb "divsi by zero doesn't fold" true
    (fold_of "arith.divsi" [ Some (Attr.int 6); Some (Attr.int 0) ] = None);
  check cb "partial constants don't fold" true
    (fold_of "arith.addi" [ Some (Attr.int 2); None ] = None)

let test_unsigned_compare () =
  check cb "ult with negative rhs (huge)" true (Arith.eval_ipred Arith.Ult 5 (-1));
  check cb "ugt with negative lhs (huge)" true (Arith.eval_ipred Arith.Ugt (-1) 5);
  check cb "slt normal" true (Arith.eval_ipred Arith.Slt (-1) 5)

(* ------------------------------------------------------------------ *)
(* opset algebra                                                       *)
(* ------------------------------------------------------------------ *)

let test_opset_covers () =
  let s = [ Opset.dialect "scf"; Opset.exact "cf.br" ] in
  check cb "dialect covers op" true (Opset.covers s (Opset.exact "scf.for"));
  check cb "exact covers itself" true (Opset.covers s (Opset.exact "cf.br"));
  check cb "exact doesn't cover sibling" false
    (Opset.covers s (Opset.exact "cf.cond_br"));
  check cb "dialect covers constrained" true
    (Opset.covers [ Opset.dialect "memref" ]
       (Opset.constrained "memref.subview" "constr"));
  check cb "constrained doesn't cover plain" false
    (Opset.covers
       [ Opset.constrained "memref.subview" "constr" ]
       (Opset.exact "memref.subview"));
  check cb "exact covers constrained" true
    (Opset.covers [ Opset.exact "memref.subview" ]
       (Opset.constrained "memref.subview" "constr"))

let test_opset_remove () =
  let s = [ Opset.exact "scf.for"; Opset.exact "cf.br"; Opset.dialect "arith" ] in
  let s' = Opset.remove ~removed:[ Opset.dialect "scf" ] s in
  check cb "scf removed" false (Opset.covers s' (Opset.exact "scf.for"));
  check cb "others kept" true (Opset.covers s' (Opset.exact "cf.br"))

let test_opset_parse () =
  let s = Opset.parse "{scf.*, cf.branch, memref.subview.constr}" in
  check ci "three elements" 3 (List.length s);
  check cb "wildcard parsed" true (List.mem (Opset.dialect "scf") s);
  check cb "constrained parsed" true
    (List.mem (Opset.constrained "memref.subview" "constr") s)

let test_opset_of_payload () =
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:4 () in
  let s = Opset.of_payload md in
  check cb "contains scf.for" true (Opset.covers s (Opset.exact "scf.for"));
  check cb "contains memref.load" true (Opset.covers s (Opset.exact "memref.load"));
  check cb "no llvm" false (Opset.overlaps s [ Opset.dialect "llvm" ])

(* ------------------------------------------------------------------ *)
(* shlo patterns                                                       *)
(* ------------------------------------------------------------------ *)

let shlo_func body =
  let md = Builtin.create_module () in
  let t = Typ.tensor (Typ.static_dims [ 4; 4 ]) Typ.f32 in
  let f, entry = Func.create ~name:"f" ~arg_types:[ t; t ] ~result_types:[ t ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let r = body rw t (Ircore.block_arg entry 0) (Ircore.block_arg entry 1) in
  Func.return rw ~operands:[ r ] ();
  md

let apply_patterns names md =
  let patterns = List.map Pattern.lookup_exn names in
  ignore (Dutil.apply_greedy ctx ~patterns md)

let count name md = List.length (Symbol.collect_ops ~op_name:name md)

let test_add_zero_pattern () =
  let md =
    shlo_func (fun rw t x _ ->
        let z = Shlo.constant rw ~typ:t (Attr.Dense_float ([ 0.0 ], t)) in
        Shlo.add rw x z)
  in
  apply_patterns [ "shlo.add_zero" ] md;
  check ci "add gone" 0 (count "shlo.add" md)

let test_transpose_of_transpose () =
  let md =
    shlo_func (fun rw t x _ ->
        let t1 = Shlo.transpose rw x ~permutation:[ 1; 0 ] ~result_typ:t in
        Shlo.transpose rw t1 ~permutation:[ 1; 0 ] ~result_typ:t)
  in
  apply_patterns [ "shlo.transpose_of_transpose" ] md;
  check ci "both transposes gone" 0 (count "shlo.transpose" md)

let test_matmul_of_transpose () =
  let md =
    shlo_func (fun rw t x y ->
        let yt = Shlo.transpose rw y ~permutation:[ 1; 0 ] ~result_typ:t in
        Shlo.dot_general rw x yt ~result_typ:t)
  in
  apply_patterns [ "shlo.matmul_of_transpose" ] md;
  check ci "transpose folded" 0 (count "shlo.transpose" md);
  let dot = List.hd (Symbol.collect_ops ~op_name:"shlo.dot_general" md) in
  check cb "marked transposed" true (Ircore.has_attr dot "rhs_transposed")

let test_culprit_pattern () =
  let md =
    shlo_func (fun rw t x _ ->
        let r =
          Shlo.reshape rw x ~result_typ:(Typ.tensor (Typ.static_dims [ 16 ]) Typ.f32)
        in
        let z = Dutil.const_float rw 0.0 in
        ignore t;
        Shlo.reduce rw r ~init:z ~dimensions:[ 0 ] ~kind:"add"
          ~result_typ:(Typ.tensor (Typ.static_dims [ 1 ]) Typ.f32))
  in
  apply_patterns [ Shlo_patterns.culprit ] md;
  check ci "reshape folded away" 0 (count "shlo.reshape" md);
  let red = List.hd (Symbol.collect_ops ~op_name:"shlo.reduce" md) in
  check cb "dims updated to input rank" true
    (Ircore.attr red "dimensions" = Some (Attr.Int_array [ 0; 1 ]))

let test_culprit_partial_reduce_untouched () =
  (* a reduction over a strict subset of dims must NOT be rewritten *)
  let md =
    shlo_func (fun rw t x _ ->
        let tr = Shlo.transpose rw x ~permutation:[ 1; 0 ] ~result_typ:t in
        let z = Dutil.const_float rw 0.0 in
        Shlo.reduce rw tr ~init:z ~dimensions:[ 0 ] ~kind:"add" ~result_typ:t)
  in
  apply_patterns [ Shlo_patterns.culprit ] md;
  check ci "transpose kept" 1 (count "shlo.transpose" md)

let test_pattern_set_complete () =
  check ci "20 patterns" 20 (List.length (Shlo_patterns.names ()));
  List.iter
    (fun n -> check cb n true (Option.is_some (Pattern.lookup n)))
    (Shlo_patterns.names ())

(* ------------------------------------------------------------------ *)
(* scf helpers                                                         *)
(* ------------------------------------------------------------------ *)

let test_scf_for_iter_args () =
  let b = Ircore.create_block () in
  let rw = Dutil.rw_at_end b in
  let lb = Dutil.const_int rw 0 in
  let ub = Dutil.const_int rw 10 in
  let step = Dutil.const_int rw 1 in
  let init = Dutil.const_float rw 0.0 in
  let loop =
    Scf.build_for rw ~lb ~ub ~step ~iter_args:[ init ] (fun brw _iv iters ->
        [ Arith.addf brw (List.hd iters) (List.hd iters) ])
  in
  check ci "one result" 1 (Ircore.num_results loop);
  check ci "iter args" 1 (List.length (Scf.iter_args loop));
  check cb "trip count" true (Scf.static_trip_count loop = Some 10)

let test_scf_static_bounds_negative_step () =
  let b = Ircore.create_block () in
  let rw = Dutil.rw_at_end b in
  let lb = Dutil.const_int rw 0 in
  let ub = Dutil.const_int rw 10 in
  let step = Dutil.const_int rw (-1) in
  let loop = Scf.build_for rw ~lb ~ub ~step (fun _ _ _ -> []) in
  check cb "negative step rejected" true (Scf.static_bounds loop = None)

let () =
  Alcotest.run "dialects"
    [
      ( "registry",
        [
          Alcotest.test_case "all dialects present" `Quick
            test_all_dialects_registered;
          Alcotest.test_case "traits" `Quick test_traits;
          Alcotest.test_case "effects" `Quick test_effects;
        ] );
      ( "folders",
        [
          Alcotest.test_case "arith folders" `Quick test_arith_folders;
          Alcotest.test_case "unsigned compares" `Quick test_unsigned_compare;
        ] );
      ( "opset",
        [
          Alcotest.test_case "covers" `Quick test_opset_covers;
          Alcotest.test_case "remove" `Quick test_opset_remove;
          Alcotest.test_case "parse" `Quick test_opset_parse;
          Alcotest.test_case "of_payload" `Quick test_opset_of_payload;
        ] );
      ( "shlo-patterns",
        [
          Alcotest.test_case "add_zero" `Quick test_add_zero_pattern;
          Alcotest.test_case "transpose_of_transpose" `Quick
            test_transpose_of_transpose;
          Alcotest.test_case "matmul_of_transpose" `Quick
            test_matmul_of_transpose;
          Alcotest.test_case "culprit folds full reduce" `Quick
            test_culprit_pattern;
          Alcotest.test_case "culprit skips partial reduce" `Quick
            test_culprit_partial_reduce_untouched;
          Alcotest.test_case "pattern set complete" `Quick
            test_pattern_set_complete;
        ] );
      ( "scf",
        [
          Alcotest.test_case "iter args" `Quick test_scf_for_iter_args;
          Alcotest.test_case "static bounds reject bad step" `Quick
            test_scf_static_bounds_negative_step;
        ] );
    ]
