(* Action framework: the ambient, interceptable transformation-unit layer.

   Covers the handler stack (composition, veto, exception safety), the
   disabled fast path, MLIR-style debug-counter semantics, fingerprint-gated
   IR-change snapshots, per-op provenance through canonicalize, rollback
   re-marking, determinism of the journal and the payload IR across job
   counts, and counter bisection pinning a deliberately miscompiling
   pattern to its exact action index. *)

open Ir
open Dialects

let ctx = Transform.Register.full_context ()
let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let with_jobs n f =
  let saved = Pool.jobs () in
  Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) f

let dummy_root () = Builtin.create_module ()

let run_act t ~tag ?(desc = "") f =
  Action.run_on t ~tag ~desc ~loc:Loc.unknown ~root:(dummy_root ())
    ~skipped:(-1) f

(* @name() -> i32 { c1 = 1; acc = ((1+1)+1)...; return acc } — folds down
   to a single constant under canonicalize *)
let foldable_func md ~name n =
  let f, entry =
    Func.create ~name ~arg_types:[] ~result_types:[ Typ.i32 ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let one = Dutil.const_int rw ~typ:Typ.i32 1 in
  let acc = ref one in
  for _ = 1 to n do
    acc := Arith.addi rw !acc one
  done;
  Func.return rw ~operands:[ !acc ] ()

(* @name(x) -> i32 { return x } — nothing to canonicalize *)
let identity_func md ~name =
  let f, entry =
    Func.create ~name ~arg_types:[ Typ.i32 ] ~result_types:[ Typ.i32 ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  Func.return rw ~operands:(Ircore.block_args entry) ()

let canonicalize md =
  match
    Passes.Pass.run_pipeline ctx [ Passes.Pass.lookup_exn "canonicalize" ] md
  with
  | Ok (_ : Passes.Pass.run_result) -> ()
  | Error d -> Alcotest.fail (Diag.to_string d)

(* ------------------------------------------------------------------ *)
(* ambient context and journal                                         *)
(* ------------------------------------------------------------------ *)

let test_disabled_noop () =
  check cb "no ambient context" true (Action.active () = None);
  let v =
    Action.run ~tag:"pass" ~desc:"x" ~loc:Loc.unknown ~root:(dummy_root ())
      ~skipped:0
      (fun () -> 41 + 1)
  in
  check ci "run without context is the identity" 42 v;
  let t = Action.create () in
  Action.with_context t (fun () ->
      check cb "context visible" true (Action.active () <> None);
      Action.with_disabled (fun () ->
          check cb "with_disabled hides it" true (Action.active () = None)));
  check ci "nothing journaled without a context" 0
    (List.length (Action.entries t))

let test_journal_nesting () =
  let t = Action.create () in
  let v =
    Action.with_context t (fun () ->
        run_act t ~tag:"pass" ~desc:"outer" (fun () ->
            run_act t ~tag:"pattern" ~desc:"inner" (fun () -> 7)))
  in
  check ci "value threads through" 7 v;
  match Action.entries t with
  | [ outer; inner ] ->
    check cs "outer tag" "pass" outer.Action.e_tag;
    check cs "inner tag" "pattern" inner.Action.e_tag;
    check ci "outer index" 0 outer.Action.e_index;
    check ci "inner index" 1 inner.Action.e_index;
    check ci "outer depth" 0 outer.Action.e_depth;
    check ci "inner depth" 1 inner.Action.e_depth;
    check cb "both executed" true
      (outer.Action.e_outcome = Action.Executed
      && inner.Action.e_outcome = Action.Executed);
    check ci "per-tag totals" 1 (Action.tag_total t "pattern")
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es)

let test_handler_stack_and_exceptions () =
  let t = Action.create () in
  let events = ref [] in
  let h name =
    {
      Action.h_name = name;
      h_decide = (fun _ -> true);
      h_enter = (fun _ -> events := (name ^ ":enter") :: !events);
      h_exit =
        (fun _ ~ok -> events := Fmt.str "%s:exit(%b)" name ok :: !events);
    }
  in
  Action.push_handler t (h "a");
  Action.push_handler t (h "b");
  check cb "handlers force sequential scheduling" true
    (Action.with_context t Action.sequential_only);
  (* a normal action brackets through both handlers *)
  ignore (Action.with_context t (fun () -> run_act t ~tag:"x" (fun () -> 1)));
  check cb "handlers bracket the action LIFO" true
    (List.rev !events
    = [ "a:enter"; "b:enter"; "b:exit(true)"; "a:exit(true)" ]);
  (* a raising action is journaled as failed, handlers see ok:false, the
     exception escapes, and the stack unwinds for the next action *)
  events := [];
  (match
     Action.with_context t (fun () ->
         run_act t ~tag:"x" (fun () -> failwith "boom"))
   with
  | exception Failure m -> check cs "exception propagates" "boom" m
  | _ -> Alcotest.fail "expected Failure");
  check cb "handlers saw the failure" true
    (List.exists (fun e -> contains e "exit(false)") !events);
  ignore (Action.with_context t (fun () -> run_act t ~tag:"x" (fun () -> 2)));
  (match List.rev (Action.entries t) with
  | last :: failed :: _ ->
    check ci "stack unwound after exception" 0 last.Action.e_depth;
    check cb "raising action marked failed" true
      (failed.Action.e_outcome = Action.Failed)
  | _ -> Alcotest.fail "expected 3 entries");
  Action.pop_handler t;
  Action.pop_handler t;
  check cb "empty handler stack parallelizes again" false
    (Action.with_context t Action.sequential_only)

let test_revert_since () =
  let t = Action.create () in
  Action.with_context t (fun () ->
      ignore (run_act t ~tag:"transform" (fun () -> 0));
      let cur = Action.cursor () in
      ignore (run_act t ~tag:"transform" (fun () -> 0));
      ignore (run_act t ~tag:"pattern" (fun () -> 0));
      Action.revert_since cur);
  match Action.entries t with
  | [ kept; r1; r2 ] ->
    check cb "pre-cursor action untouched" true
      (kept.Action.e_outcome = Action.Executed);
    check cb "rolled-back actions re-marked" true
      (r1.Action.e_outcome = Action.Reverted
      && r2.Action.e_outcome = Action.Reverted)
  | es -> Alcotest.failf "expected 3 entries, got %d" (List.length es)

(* ------------------------------------------------------------------ *)
(* debug counters                                                      *)
(* ------------------------------------------------------------------ *)

let test_parse_counter () =
  (match Action.parse_counter "pattern:2,3" with
  | Ok c ->
    check cs "tag" "pattern" c.Action.cs_tag;
    check ci "skip" 2 c.Action.cs_skip;
    check ci "count" 3 c.Action.cs_count
  | Error e -> Alcotest.fail e);
  (match Action.parse_counter "fold:4" with
  | Ok c ->
    check ci "skip only" 4 c.Action.cs_skip;
    check cb "count defaults to unbounded" true (c.Action.cs_count = max_int)
  | Error e -> Alcotest.fail e);
  check cb "malformed spec rejected" true
    (Result.is_error (Action.parse_counter "nocolon"))

let test_counter_semantics () =
  (* TAG:2,3 over 10 occurrences: indices 2,3,4 execute, the rest skip *)
  let t =
    Action.create
      ~counters:[ { Action.cs_tag = "pat"; cs_skip = 2; cs_count = 3 } ]
      ()
  in
  let results =
    Action.with_context t (fun () ->
        List.init 10 (fun i -> run_act t ~tag:"pat" (fun () -> i)))
  in
  check cb "only the window executes" true
    (results = [ -1; -1; 2; 3; 4; -1; -1; -1; -1; -1 ]);
  let outcomes = List.map (fun e -> e.Action.e_outcome) (Action.entries t) in
  check ci "all ten journaled" 10 (List.length outcomes);
  check ci "three executed" 3
    (List.length (List.filter (fun o -> o = Action.Executed) outcomes));
  check ci "seven skipped" 7
    (List.length (List.filter (fun o -> o = Action.Skipped) outcomes));
  (* a counter on one tag leaves other tags alone *)
  let v =
    Action.with_context t (fun () -> run_act t ~tag:"other" (fun () -> 5))
  in
  check cb "unrelated tag unaffected" true (v <> -1)

(* ------------------------------------------------------------------ *)
(* IR change snapshots                                                 *)
(* ------------------------------------------------------------------ *)

let test_snapshot_gating () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let snap =
    { Action.sn_tags = [ "pass" ]; sn_mode = Action.Snap_print ppf }
  in
  let md = Builtin.create_module () in
  foldable_func md ~name:"hot" 3;
  identity_func md ~name:"cold";
  let t = Action.create ~snapshot:snap () in
  Action.with_context t (fun () -> canonicalize md);
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  check cb "changed function is dumped" true (contains out "(@hot)");
  check cb "diff shows the change" true (contains out "arith.addi");
  check cb "unchanged function is not dumped" false (contains out "(@cold)");
  (* a second run over the now-canonical module changes nothing: the
     fingerprint gate suppresses every dump *)
  Buffer.clear buf;
  Action.with_context t (fun () -> canonicalize md);
  Format.pp_print_flush ppf ();
  check cs "no-change pass prints nothing" "" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* provenance                                                          *)
(* ------------------------------------------------------------------ *)

let test_provenance_canonicalize () =
  let md = Builtin.create_module () in
  foldable_func md ~name:"hot" 3;
  identity_func md ~name:"cold";
  let t = Action.create ~provenance:true () in
  Action.with_context t (fun () -> canonicalize md);
  let json = Action.provenance_to_json t ~root:md in
  (* every op of the final module resolves to a record *)
  let live = ref 0 in
  Ircore.walk_op md ~pre:(fun _ -> incr live);
  let section name =
    match Ir.Json.member name json with
    | Some l -> Option.get (Ir.Json.to_list l)
    | None -> Alcotest.failf "missing %s section" name
  in
  check ci "every live op has a record" !live (List.length (section "ops"));
  let rendered = Ir.Json.to_line json in
  check cb "folded constant is attributed to its materialization" true
    (contains rendered "fold.materialize");
  check cb "rewritten ops report rewrite origin" true
    (contains rendered "\"origin\":\"rewrite\"");
  check cb "dead constants appear in the erased section" true
    (section "erased" <> []);
  check cb "erased ops name the erasing action" true
    (List.exists
       (fun r -> contains (Ir.Json.to_line r) "\"dce\"")
       (section "erased"))

let test_provenance_squeezenet () =
  (* every op of the canonicalized squeezenet resolves to a record *)
  let spec = List.hd Workloads.Models.paper_models in
  check cs "first paper model is squeezenet" "squeezenet"
    spec.Workloads.Models.sp_name;
  let md = Workloads.Models.build spec in
  let t = Action.create ~provenance:true () in
  Action.with_context t (fun () -> canonicalize md);
  let json = Action.provenance_to_json t ~root:md in
  let live = ref 0 in
  Ircore.walk_op md ~pre:(fun _ -> incr live);
  let ops =
    match Ir.Json.member "ops" json with
    | Some l -> Option.get (Ir.Json.to_list l)
    | None -> Alcotest.fail "missing ops section"
  in
  check ci "every final squeezenet op has a provenance record" !live
    (List.length ops);
  check cb "records carry an origin" true
    (List.for_all
       (fun r ->
         match Ir.Json.member "origin" r with
         | Some (Ir.Json.String ("input" | "rewrite")) -> true
         | _ -> false)
       ops)

(* ------------------------------------------------------------------ *)
(* determinism across job counts                                       *)
(* ------------------------------------------------------------------ *)

let test_jobs_determinism () =
  let build () =
    let md = Builtin.create_module () in
    for i = 0 to 7 do
      foldable_func md ~name:(Fmt.str "f%d" i) (3 + i)
    done;
    md
  in
  let run jobs =
    let md = build () in
    let t = Action.create ~provenance:true () in
    with_jobs jobs (fun () ->
        Action.with_context t (fun () -> canonicalize md));
    let journal =
      List.map
        (fun e -> Ir.Json.to_line (Action.entry_to_json ~timing:false e))
        (Action.entries t)
    in
    (Printer.op_to_string md, journal)
  in
  let ir1, _j1 = run 1 in
  let ir2, j2 = run 2 in
  let ir4, j4 = run 4 in
  let _ir4', j4' = run 4 in
  check cs "payload IR byte-identical at jobs=4" ir1 ir4;
  check cs "payload IR byte-identical at jobs=2" ir1 ir2;
  (* the sequential pass runs one whole-module greedy while the parallel
     schedule runs per-function greedy, so jobs=1 journals differ by
     construction; across parallel degrees and runs the replayed journal
     must be identical *)
  check cb "journal identical across parallel degrees" true (j2 = j4);
  check cb "journal deterministic run-to-run at jobs=4" true (j4 = j4');
  check cb "captured pattern/fold work replays into the journal" true
    (List.exists (fun l -> contains l "\"fold\"") j4);
  check cb "journal non-trivial" true (List.length j4 > 8)

let test_handlers_off_byte_identical () =
  (* a journal+provenance context (no handlers) must not perturb the
     transformation: the five Table-1 model lowerings stay byte-identical *)
  let passes =
    match Passes.Pass.parse_pipeline Workloads.Models.tosa_pipeline_str with
    | Ok ps -> ps
    | Error d -> Alcotest.fail (Diag.to_string d)
  in
  let lower md =
    match Passes.Pass.run_pipeline ctx passes md with
    | Ok (_ : Passes.Pass.run_result) -> Printer.op_to_string md
    | Error d -> Alcotest.fail (Diag.to_string d)
  in
  List.iter
    (fun spec ->
      let bare = lower (Workloads.Models.build spec) in
      let md = Workloads.Models.build spec in
      let t = Action.create ~provenance:true () in
      let journaled = Action.with_context t (fun () -> lower md) in
      check cs
        (Fmt.str "%s: journaled lowering = bare lowering"
           spec.Workloads.Models.sp_name)
        bare journaled;
      check cb
        (Fmt.str "%s: lowering routed through actions"
           spec.Workloads.Models.sp_name)
        true
        (Action.tag_total t "pass" > 0))
    Workloads.Models.paper_models

(* ------------------------------------------------------------------ *)
(* bisection of a deliberately miscompiling pattern                    *)
(* ------------------------------------------------------------------ *)

(* "evil" looks like a benign strength-reduction pattern but miscompiles
   exactly one shape: x * 7 becomes the constant 999 *)
let evil =
  Pattern.make ~root:"arith.muli" ~name:"evil" (fun rw op ->
      let const_operand v =
        match Ircore.defining_op v with
        | Some d when d.Ircore.op_name = "arith.constant" -> (
          match Ircore.attr d "value" with
          | Some (Attr.Int (n, _)) -> Some n
          | _ -> None)
        | _ -> None
      in
      match List.find_map const_operand (Array.to_list op.Ircore.operands) with
      | Some 7 ->
        Rewriter.set_ip rw (Builder.Before op);
        let c = Dutil.const_int rw ~typ:Typ.i32 999 in
        Rewriter.replace_op rw op ~with_:[ c ];
        true
      | _ -> false)

let test_bisect_localizes_miscompile () =
  let build () =
    let md = Builtin.create_module () in
    let f, entry =
      Func.create ~name:"m" ~arg_types:[ Typ.i32 ]
        ~result_types:[ Typ.i32 ] ()
    in
    Ircore.insert_at_end (Builtin.body_block md) f;
    let rw = Dutil.rw_at_end entry in
    let x = List.hd (Ircore.block_args entry) in
    let acc = ref x in
    (* several muli sites; only the *7 one trips the miscompile *)
    List.iter
      (fun k ->
        let c = Dutil.const_int rw ~typ:Typ.i32 k in
        acc := Arith.muli rw !acc c)
      [ 2; 3; 7; 5 ];
    Func.return rw ~operands:[ !acc ] ();
    md
  in
  let apply counters =
    let md = build () in
    let t = Action.create ~counters () in
    Action.with_context t (fun () ->
        ignore (Dutil.apply_greedy ctx ~patterns:[ evil ] md : bool));
    (* the injected 999 constant-folds with the remaining chain (999 * 5 =
       4995), so the miscompile witness is either form *)
    let out = Printer.op_to_string md in
    (t, contains out "999" || contains out "4995")
  in
  let fails counters = snd (apply counters) in
  let total tag = Action.tag_total (fst (apply [])) tag in
  check cb "miscompile reproduces unrestricted" true (fails []);
  match Fuzz.Bisect.localize ~fails ~total () with
  | None -> Alcotest.fail "bisection found no culprit"
  | Some c ->
    check cs "culprit is a pattern application" "pattern" c.Fuzz.Bisect.c_tag;
    let prefix k =
      [ { Action.cs_tag = "pattern"; cs_skip = 0; cs_count = k } ]
    in
    (* the named index is exact: the prefix excluding it is clean, the
       prefix including it reproduces the miscompile *)
    check cb "prefix below the culprit is clean" false
      (fails (prefix c.Fuzz.Bisect.c_index));
    check cb "prefix through the culprit miscompiles" true
      (fails (prefix (c.Fuzz.Bisect.c_index + 1)))

let () =
  Alcotest.run "action"
    [
      ( "context",
        [
          Alcotest.test_case "disabled-noop" `Quick test_disabled_noop;
          Alcotest.test_case "journal-nesting" `Quick test_journal_nesting;
          Alcotest.test_case "handler-stack-exceptions" `Quick
            test_handler_stack_and_exceptions;
          Alcotest.test_case "revert-since" `Quick test_revert_since;
        ] );
      ( "counters",
        [
          Alcotest.test_case "parse" `Quick test_parse_counter;
          Alcotest.test_case "skip-count-window" `Quick test_counter_semantics;
        ] );
      ( "snapshots",
        [ Alcotest.test_case "fingerprint-gated" `Quick test_snapshot_gating ] );
      ( "provenance",
        [
          Alcotest.test_case "through-canonicalize" `Quick
            test_provenance_canonicalize;
          Alcotest.test_case "squeezenet-resolves" `Quick
            test_provenance_squeezenet;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs-byte-equality" `Quick test_jobs_determinism;
          Alcotest.test_case "handlers-off-identical" `Quick
            test_handlers_off_byte_identical;
        ] );
      ( "bisect",
        [
          Alcotest.test_case "localizes-miscompile" `Quick
            test_bisect_localizes_miscompile;
        ] );
    ]
