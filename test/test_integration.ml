(* Smoke-level integration test; the full suites live in the other files. *)

open Ir
open Testutil

let test_matmul_baseline () =
  let m, n, k = (16, 16, 8) in
  let md = Workloads.Matmul.build_module ~m ~n ~k () in
  check_verifies "baseline" md;
  match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
  | Error e -> Alcotest.failf "run failed: %s" e
  | Ok (a, b, c_init, c_out, _report) ->
    let expected = Workloads.Matmul.reference ~m ~n ~k a b c_init in
    let diff = Workloads.Matmul.max_abs_diff expected c_out in
    Alcotest.(check bool) "results match reference" true (diff < 1e-4)

let test_transform_tile_preserves_semantics () =
  let m, n, k = (24, 16, 8) in
  let md = Workloads.Matmul.build_module ~m ~n ~k () in
  let script =
    Transform.Build.script (fun rw root ->
        let loop = Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        let _tiles, _points = Transform.Build.loop_tile rw ~sizes:[ 8; 8 ] loop in
        ())
  in
  (match Transform.Schedule.run ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "transform failed: %s" (Transform.Terror.to_string e));
  check_verifies "tiled" md;
  match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
  | Error e -> Alcotest.failf "run failed: %s" e
  | Ok (a, b, c_init, c_out, _) ->
    let expected = Workloads.Matmul.reference ~m ~n ~k a b c_init in
    Alcotest.(check bool)
      "tiled results match" true
      (Workloads.Matmul.max_abs_diff expected c_out < 1e-4)

let test_split_tile_library () =
  (* scaled-down Case Study 4 *)
  let m, n, k = (20, 16, 8) in
  (* i = 20 split by 16 -> main 16 + rest 4 *)
  let md = Workloads.Matmul.build_module ~m ~n ~k () in
  let script =
    Transform.Build.script (fun rw root ->
        let loop = Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        let main, rest = Transform.Build.loop_split rw ~div_by:16 loop in
        let _tiles, points = Transform.Build.loop_tile rw ~sizes:[ 16; 16 ] main in
        Transform.Build.alternatives rw
          [
            (fun brw -> Transform.Build.to_library brw ~library:"libxsmm" points);
            (fun _ -> ());
          ];
        Transform.Build.loop_unroll_full rw rest)
  in
  (match Transform.Schedule.run ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "transform failed: %s" (Transform.Terror.to_string e));
  check_verifies "libraryized" md;
  (* the nest should now contain a func.call to libxsmm_gemm *)
  let calls = Symbol.collect_ops ~op_name:"func.call" md in
  Alcotest.(check bool) "library call present" true (calls <> []);
  match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
  | Error e -> Alcotest.failf "run failed: %s" e
  | Ok (a, b, c_init, c_out, _) ->
    let expected = Workloads.Matmul.reference ~m ~n ~k a b c_init in
    Alcotest.(check bool)
      "microkernel results match" true
      (Workloads.Matmul.max_abs_diff expected c_out < 1e-3)

let test_scf_to_cf_execution () =
  let m, n, k = (8, 8, 4) in
  let md = Workloads.Matmul.build_module ~m ~n ~k () in
  let pass = Passes.Pass.lookup_exn "convert-scf-to-cf" in
  (match pass.Passes.Pass.run ctx md with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pass failed: %s" (Diag.to_string e));
  check_verifies "cfg form" md;
  Alcotest.(check bool)
    "no scf left" true
    (Symbol.collect md ~f:(fun o -> Ircore.op_dialect o = "scf") = []);
  match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
  | Error e -> Alcotest.failf "run failed: %s" e
  | Ok (a, b, c_init, c_out, _) ->
    let expected = Workloads.Matmul.reference ~m ~n ~k a b c_init in
    Alcotest.(check bool)
      "CFG execution matches" true
      (Workloads.Matmul.max_abs_diff expected c_out < 1e-4)

let () =
  Alcotest.run "integration"
    [
      ( "integration",
        [
          Alcotest.test_case "matmul baseline executes" `Quick
            test_matmul_baseline;
          Alcotest.test_case "tile preserves semantics" `Quick
            test_transform_tile_preserves_semantics;
          Alcotest.test_case "split+tile+to_library" `Quick
            test_split_tile_library;
          Alcotest.test_case "scf-to-cf then execute" `Quick
            test_scf_to_cf_execution;
        ] );
    ]
