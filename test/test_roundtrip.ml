(* Print → parse → print fixpoint over every example script and one
   representative module per dialect — the fuzzer's roundtrip oracle,
   pinned on deterministic inputs so a printer/parser drift is caught even
   when no fuzz campaign runs. *)

open Ir
open Dialects
open Testutil

let roundtrip_ok what m =
  let s1 = Printer.op_to_string m in
  match Parser.parse_module s1 with
  | Error e -> Alcotest.failf "%s: reparse failed: %s\nprinted:\n%s" what e s1
  | Ok m2 ->
    let s2 = Printer.op_to_string m2 in
    check Alcotest.string (what ^ ": print->parse->print fixpoint") s1 s2

(* ---------------- example scripts ---------------- *)

let test_example_scripts () =
  let dir = "../examples/scripts" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mlir")
    |> List.sort compare
  in
  check cb "scripts found" true (files <> []);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      roundtrip_ok f (parse_file path))
    files

(* ---------------- representative modules per dialect ---------------- *)

let linalg_module () =
  let md = Builtin.create_module () in
  let mt a b = Typ.memref (Typ.static_dims [ a; b ]) Typ.f32 in
  let f, entry =
    Func.create ~name:"mm" ~arg_types:[ mt 4 2; mt 2 4; mt 4 4 ]
      ~result_types:[] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  ignore
    (Linalg.matmul rw
       ~a:(Ircore.block_arg entry 0)
       ~b:(Ircore.block_arg entry 1)
       ~c:(Ircore.block_arg entry 2));
  Func.return rw ();
  md

(* math, index and vector ops in one function *)
let misc_module () =
  let md = Builtin.create_module () in
  let f, entry = Func.create ~name:"misc" ~arg_types:[] ~result_types:[ Typ.f64 ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let x = Dutil.const_float rw ~typ:Typ.f64 2.0 in
  let s = Rewriter.build1 rw ~operands:[ x ] ~result_types:[ Typ.f64 ] "math.sqrt" in
  let _i = Index_d.constant rw 3 in
  let v = Vector.splat rw s ~vector_typ:(Typ.Vector ([ 4 ], Typ.f64)) in
  let r = Vector.reduction rw ~kind:"add" v in
  Func.return rw ~operands:[ r ] ();
  md

let tensor_module () =
  let md = Builtin.create_module () in
  let rng = Random.State.make [| 1 |] in
  Ircore.insert_at_end (Builtin.body_block md)
    (Fuzz.Gen.gen_tensor_function rng "t");
  md

let test_dialect_representatives () =
  (* builtin + func + arith + scf + memref *)
  roundtrip_ok "matmul(arith,scf,func,memref)"
    (Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 ());
  (* cf: the matmul loops converted to a CFG *)
  let cfm = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  run_pass "convert-scf-to-cf" cfm;
  roundtrip_ok "cf" cfm;
  (* memref.subview + affine (after metadata expansion) *)
  let sub = Workloads.Subview_kernel.build Workloads.Subview_kernel.Dynamic_offset in
  roundtrip_ok "memref-subview" sub;
  run_pass "expand-strided-metadata" sub;
  roundtrip_ok "affine" sub;
  (* llvm: the full Case-Study-2 lowering output *)
  let ll = Workloads.Subview_kernel.build Workloads.Subview_kernel.Static_offset in
  (match run_pipeline Workloads.Subview_kernel.naive_pipeline ll with
  | Ok () -> ()
  | Error e -> Alcotest.failf "CS2 lowering failed: %s" e);
  roundtrip_ok "llvm" ll;
  roundtrip_ok "linalg" (linalg_module ());
  roundtrip_ok "math/index/vector" (misc_module ());
  roundtrip_ok "tensor" (tensor_module ());
  (* tosa + shlo: the Table-1 model generators *)
  roundtrip_ok "tosa"
    (Workloads.Models.build (List.hd Workloads.Models.paper_models));
  roundtrip_ok "shlo" (Workloads.Llm.build ~layers:1 ())

let () =
  Alcotest.run "roundtrip"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "example-scripts" `Quick test_example_scripts;
          Alcotest.test_case "dialect-representatives" `Quick
            test_dialect_representatives;
        ] );
    ]
