(* Structured (linalg-level) transforms: tiling into subview nests,
   microkernel replacement, lowering to loops — and their composition
   through the transform interpreter. *)

open Ir
module T = Transform

let ctx = T.Register.full_context ()
let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let count name md = List.length (Symbol.collect_ops ~op_name:name md)

let check_matmul ~m ~n ~k md =
  Verifier.verify_or_fail ctx md;
  match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
  | Error e -> Alcotest.failf "run: %s" e
  | Ok (a, b, c_init, c_out, report) ->
    let expected = Workloads.Matmul.reference ~m ~n ~k a b c_init in
    check cb "matmul result correct" true
      (Workloads.Matmul.max_abs_diff expected c_out < 1e-3);
    report

let the_matmul md = List.hd (Symbol.collect_ops ~op_name:"linalg.matmul" md)

(* ------------------------------------------------------------------ *)
(* direct API                                                          *)
(* ------------------------------------------------------------------ *)

let test_tile_structure () =
  let md = Workloads.Matmul.build_linalg_module ~m:16 ~n:16 ~k:8 () in
  let rw = Rewriter.create () in
  (match Passes.Structured.tile_matmul rw (the_matmul md) ~sizes:[ 8; 8; 0 ] with
  | Ok (loops, inner) ->
    check ci "two tile loops" 2 (List.length loops);
    check cb "inner is a matmul" true (inner.Ircore.op_name = "linalg.matmul");
    check cb "inner operands are subviews" true
      (List.for_all
         (fun v ->
           match Ircore.defining_op v with
           | Some d -> d.Ircore.op_name = "memref.subview"
           | None -> false)
         (Ircore.operands inner))
  | Error e -> Alcotest.fail e);
  check ci "subviews created" 3 (count "memref.subview" md)

let test_tile_rejects_indivisible () =
  let md = Workloads.Matmul.build_linalg_module ~m:10 ~n:16 ~k:8 () in
  let rw = Rewriter.create () in
  match Passes.Structured.tile_matmul rw (the_matmul md) ~sizes:[ 8; 8; 0 ] with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> check ci "payload unchanged" 1 (count "linalg.matmul" md)

let test_tile_then_lower_executes () =
  let m, n, k = (16, 16, 8) in
  let md = Workloads.Matmul.build_linalg_module ~m ~n ~k () in
  let rw = Rewriter.create () in
  (match Passes.Structured.tile_matmul rw (the_matmul md) ~sizes:[ 8; 8; 8 ] with
  | Ok (_, inner) -> (
    match Passes.Structured.matmul_to_loops rw inner with
    | Ok () -> ()
    | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e);
  check ci "no linalg left" 0 (count "linalg.matmul" md);
  ignore (check_matmul ~m ~n ~k md)

let test_to_library_executes () =
  let m, n, k = (32, 32, 16) in
  let md = Workloads.Matmul.build_linalg_module ~m ~n ~k () in
  let rw = Rewriter.create () in
  (match
     Passes.Structured.matmul_to_library rw (the_matmul md) ~library:"libxsmm"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check ci "call present" 1 (count "func.call" md);
  ignore (check_matmul ~m ~n ~k md)

let test_to_library_rejects_large () =
  let md = Workloads.Matmul.build_linalg_module ~m:100 ~n:32 ~k:16 () in
  let rw = Rewriter.create () in
  match
    Passes.Structured.matmul_to_library rw (the_matmul md) ~library:"libxsmm"
  with
  | Ok _ -> Alcotest.fail "expected failure for m=100"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* through the transform interpreter                                   *)
(* ------------------------------------------------------------------ *)

let test_transform_tile_to_library () =
  (* the structured version of Case Study 4: tile, then replace the inner
     tile with the microkernel — with lowering-to-loops as the alternative *)
  let m, n, k = (128, 96, 64) in
  let md = Workloads.Matmul.build_linalg_module ~m ~n ~k () in
  let script =
    T.Build.script (fun rw root ->
        let mm = T.Build.match_op rw ~name:"linalg.matmul" root in
        let _loops, inner = T.Build.structured_tile rw ~sizes:[ 32; 32; 0 ] mm in
        T.Build.alternatives rw
          [
            (fun brw -> T.Build.structured_to_library brw ~library:"libxsmm" inner);
            (fun brw -> T.Build.structured_to_loops brw inner);
          ])
  in
  (match T.Schedule.run ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (T.Terror.to_string e));
  check cb "library call present" true (count "func.call" md >= 1);
  ignore (check_matmul ~m ~n ~k md)

let test_transform_alternative_falls_back_to_loops () =
  (* tile sizes outside libxsmm support: the alternative lowers to loops *)
  let m, n, k = (132, 96, 64) in
  (* 132 % 66 = 0 but 66 > 64: unsupported *)
  let md = Workloads.Matmul.build_linalg_module ~m ~n ~k () in
  let script =
    T.Build.script (fun rw root ->
        let mm = T.Build.match_op rw ~name:"linalg.matmul" root in
        let _loops, inner = T.Build.structured_tile rw ~sizes:[ 66; 32; 0 ] mm in
        T.Build.alternatives rw
          [
            (fun brw -> T.Build.structured_to_library brw ~library:"libxsmm" inner);
            (fun brw -> T.Build.structured_to_loops brw inner);
          ])
  in
  (match T.Schedule.run ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (T.Terror.to_string e));
  check ci "no library call (fell back)" 0 (count "func.call" md);
  check ci "lowered to loops instead" 0 (count "linalg.matmul" md);
  ignore (check_matmul ~m ~n ~k md)

let test_microkernel_beats_loops () =
  (* the structured pipeline also reproduces the CS4 performance shape *)
  let m, n, k = (128, 96, 64) in
  let run use_library =
    let md = Workloads.Matmul.build_linalg_module ~m ~n ~k () in
    let script =
      T.Build.script (fun rw root ->
          let mm = T.Build.match_op rw ~name:"linalg.matmul" root in
          let _loops, inner = T.Build.structured_tile rw ~sizes:[ 32; 32; 0 ] mm in
          if use_library then
            T.Build.structured_to_library rw ~library:"libxsmm" inner
          else T.Build.structured_to_loops rw inner)
    in
    (match T.Schedule.run ctx ~script ~payload:md with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (T.Terror.to_string e));
    (check_matmul ~m ~n ~k md).Interp.Machine.r_seconds
  in
  let loops_t = run false in
  let lib_t = run true in
  check cb
    (Fmt.str "microkernel >10x faster (got %.1fx)" (loops_t /. lib_t))
    true
    (loops_t /. lib_t > 10.0)

let test_structured_tile_sizes_zero_is_noop_dim () =
  let m, n, k = (16, 16, 8) in
  let md = Workloads.Matmul.build_linalg_module ~m ~n ~k () in
  let rw = Rewriter.create () in
  match Passes.Structured.tile_matmul rw (the_matmul md) ~sizes:[ 0; 0; 0 ] with
  | Ok (loops, inner) ->
    check ci "no loops" 0 (List.length loops);
    check cb "inner is the original op" true (inner == the_matmul md)
  | Error e -> Alcotest.fail e

(* property: the microkernel replacement is semantics-preserving across the
   supported size range *)
let prop_to_library_preserves_semantics =
  QCheck.Test.make ~count:15
    ~name:"to_library preserves semantics across supported sizes"
    QCheck.(triple (int_range 1 16) (int_range 1 16) (int_range 1 32))
    (fun (mq, nq, kq) ->
      let m = mq * 2 and n = nq * 4 and k = kq * 2 in
      let md = Workloads.Matmul.build_linalg_module ~m ~n ~k () in
      let rw = Rewriter.create () in
      match
        Passes.Structured.matmul_to_library rw (the_matmul md)
          ~library:"libxsmm"
      with
      | Error _ -> m > 64 || n > 64 (* only out-of-range sizes may fail *)
      | Ok _ -> (
        match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
        | Error _ -> false
        | Ok (a, b, c_init, c_out, _) ->
          let expected = Workloads.Matmul.reference ~m ~n ~k a b c_init in
          Workloads.Matmul.max_abs_diff expected c_out < 1e-3))

let () =
  Alcotest.run "structured"
    [
      ( "api",
        [
          Alcotest.test_case "tile structure" `Quick test_tile_structure;
          Alcotest.test_case "tile rejects indivisible" `Quick
            test_tile_rejects_indivisible;
          Alcotest.test_case "tile + lower executes" `Quick
            test_tile_then_lower_executes;
          Alcotest.test_case "to_library executes" `Quick
            test_to_library_executes;
          Alcotest.test_case "to_library rejects large" `Quick
            test_to_library_rejects_large;
          Alcotest.test_case "all-zero sizes are a no-op" `Quick
            test_structured_tile_sizes_zero_is_noop_dim;
        ] );
      ( "transform",
        [
          Alcotest.test_case "tile then to_library" `Quick
            test_transform_tile_to_library;
          Alcotest.test_case "alternatives fall back to loops" `Quick
            test_transform_alternative_falls_back_to_loops;
          Alcotest.test_case "microkernel beats loops" `Quick
            test_microkernel_beats_loops;
          QCheck_alcotest.to_alcotest prop_to_library_preserves_semantics;
        ] );
    ]
