(* The fuzzing subsystem itself: generator determinism and well-typedness,
   oracle behavior on known-good and known-bad modules, shrinker progress,
   and a fixed-seed smoke corpus (200 cases) run at test time so every
   `dune runtest` exercises the whole generate → oracle → shrink loop. *)

open Ir
open Dialects
open Testutil

let cs = Alcotest.string

(* ---------------- generator ---------------- *)

let test_generator_deterministic () =
  let p seed case =
    Printer.op_to_string (Fuzz.Driver.module_for ~seed ~case ())
  in
  check cs "same (seed, case) -> same module" (p 11 3) (p 11 3);
  check cb "different case -> different module" true (p 11 3 <> p 11 4)

let test_generator_well_typed () =
  for case = 0 to 19 do
    let m = Fuzz.Driver.module_for ~seed:5 ~case () in
    match Verifier.verify ctx m with
    | Ok () -> ()
    | Error ds ->
      Alcotest.failf "case %d: %a" case
        Fmt.(list ~sep:comma Diag.pp_headline)
        ds
  done

let test_generator_entry_runs () =
  let m = Fuzz.Driver.module_for ~seed:5 ~case:0 () in
  match
    Interp.Compile.run_function ~ir_ctx:ctx ~module_:m ~name:Fuzz.Gen.entry_name
      []
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "main does not execute: %s" e

(* ---------------- oracles ---------------- *)

let test_oracle_accepts_good_module () =
  let m = Fuzz.Driver.module_for ~seed:3 ~case:1 () in
  match Fuzz.Oracle.run_all ctx m with
  | Ok () -> ()
  | Error f -> Alcotest.failf "%a" Fuzz.Oracle.pp_failure f

let test_differential_clean_module () =
  (* differential on a hand-written module through a real pipeline: a
     correct pass must never be flagged (no false positives) *)
  let src =
    {|"builtin.module"() ({
  "func.func"() ({
    %0 = "arith.constant"() {value = 2 : i64} : () -> i64
    %1 = "arith.constant"() {value = 3 : i64} : () -> i64
    %2 = "arith.divsi"(%0, %1) : (i64, i64) -> i64
    "func.return"(%2) : (i64) -> ()
  }) {sym_name = "main", function_type = () -> i64} : () -> ()
}) : () -> ()|}
  in
  let m =
    match Parser.parse_module src with
    | Ok m -> m
    | Error e -> Alcotest.failf "parse: %s" e
  in
  match Fuzz.Oracle.differential ctx ~pipeline:"canonicalize" m with
  | Ok () -> ()
  | Error f -> Alcotest.failf "clean module flagged: %a" Fuzz.Oracle.pp_failure f

let test_llvm_pipeline_skipped_on_tensor () =
  (* tensor ops have no llvm lowering; the oracle must treat the CS2
     pipeline as inapplicable rather than reporting a compiler bug *)
  let md = Builtin.create_module () in
  let rng = Random.State.make [| 9 |] in
  Ircore.insert_at_end (Builtin.body_block md)
    (Fuzz.Gen.gen_tensor_function rng "t");
  let pipeline = String.concat "," Workloads.Subview_kernel.naive_pipeline in
  check cb "inapplicable" false (Fuzz.Oracle.applicable ~pipeline md);
  check cb "canonicalize applicable" true
    (Fuzz.Oracle.applicable ~pipeline:"canonicalize" md)

(* ---------------- shrinker ---------------- *)

let test_shrinker_minimizes () =
  let m = Fuzz.Driver.module_for ~seed:8 ~case:2 () in
  (* synthetic failure: "any module whose main contains an arith.constant";
     the shrinker must keep the property while strictly shrinking *)
  let has_const c = count "arith.constant" c > 0 in
  let before = Fuzz.Shrink.op_count m in
  let small = Fuzz.Shrink.shrink m ~still_fails:has_const in
  check cb "still has witness" true (has_const small);
  check cb "strictly smaller" true (Fuzz.Shrink.op_count small < before);
  Verifier.verify_or_fail ctx small

(* ---------------- reproducer format ---------------- *)

let test_reproducer_replayable () =
  let f =
    {
      Fuzz.Oracle.f_oracle = "differential";
      f_pipeline = Some "canonicalize,cse";
      f_detail = "results differ";
      f_module = "";
    }
  in
  let m = Fuzz.Driver.module_for ~seed:1 ~case:1 () in
  let text =
    Fuzz.Driver.reproducer_text ~seed:1 ~case:1 f (Printer.op_to_string m)
  in
  check cb "embeds pipeline" true
    (contains text "// configuration: --pass-pipeline=canonicalize,cse");
  (* the reproducer body must reparse (comments are skipped by the lexer) *)
  match Parser.parse_module text with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "reproducer does not reparse: %s" e

(* ---------------- smoke corpus ---------------- *)

let test_smoke_corpus () =
  let stats = Fuzz.Driver.run ctx ~seed:42 ~cases:200 () in
  (match stats.Fuzz.Driver.s_failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "case %d: %a\nminimized:\n%s" f.Fuzz.Driver.r_case
      Fuzz.Oracle.pp_failure f.Fuzz.Driver.r_failure f.Fuzz.Driver.r_minimized);
  check ci "all cases ran" 200 stats.Fuzz.Driver.s_cases

(* ---------------- schedule differential ---------------- *)

let test_schedule_diff_clean_case () =
  (* one case per script variant: compiled and interpreted execution must
     agree on every variant shape even before the big campaign runs *)
  for v = 0 to Fuzz.Oracle.schedule_script_variants - 1 do
    let m = Fuzz.Driver.module_for ~seed:7 ~case:v () in
    let script = Fuzz.Oracle.schedule_script ~variant:v in
    match Fuzz.Oracle.schedule_differential ctx ~script m with
    | Ok () -> ()
    | Error f ->
      Alcotest.failf "variant %d: %a" v Fuzz.Oracle.pp_failure f
  done

let test_schedule_diff_campaign () =
  let stats = Fuzz.Driver.run_schedule_diff ctx ~seed:42 ~cases:500 () in
  (match stats.Fuzz.Driver.s_failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "case %d: %a" f.Fuzz.Driver.r_case Fuzz.Oracle.pp_failure
      f.Fuzz.Driver.r_failure);
  check ci "all cases ran" 500 stats.Fuzz.Driver.s_cases

(* ---------------- flow differential ---------------- *)

let test_script_gen_deterministic () =
  let p seed case =
    let rng = Random.State.make [| 0x07d; seed; case |] in
    ignore (Fuzz.Gen.generate rng);
    Printer.op_to_string (Fuzz.Script_gen.generate rng)
  in
  check cs "same (seed, case) -> same script" (p 11 3) (p 11 3);
  check cb "different case -> different script" true (p 11 3 <> p 11 4)

let test_flow_diff_quick_cases () =
  (* a handful of inline cases before the big campaigns: every one must be
     either statically rejected or dynamically agreed, never divergent *)
  for case = 0 to 24 do
    let rng = Random.State.make [| 0x07d; 42; case |] in
    let m = Fuzz.Gen.generate rng in
    let script = Fuzz.Script_gen.generate rng in
    match Fuzz.Oracle.flow_diff ctx ~script m with
    | Ok (Fuzz.Oracle.Flow_rejected | Fuzz.Oracle.Flow_agreed) -> ()
    | Error f -> Alcotest.failf "case %d: %a" case Fuzz.Oracle.pp_failure f
  done

let flow_diff_campaign seed () =
  let stats = Fuzz.Driver.run_flow_diff ctx ~seed ~cases:500 () in
  (match stats.Fuzz.Driver.s_failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "case %d: %a\nscript:\n%s" f.Fuzz.Driver.r_case
      Fuzz.Oracle.pp_failure f.Fuzz.Driver.r_failure f.Fuzz.Driver.r_minimized);
  check ci "all cases ran" 500 stats.Fuzz.Driver.s_cases

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "well-typed" `Quick test_generator_well_typed;
          Alcotest.test_case "entry-runs" `Quick test_generator_entry_runs;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "accepts-good" `Quick test_oracle_accepts_good_module;
          Alcotest.test_case "clean-differential" `Quick
            test_differential_clean_module;
          Alcotest.test_case "tensor-skips-llvm-pipeline" `Quick
            test_llvm_pipeline_skipped_on_tensor;
        ] );
      ( "shrink",
        [ Alcotest.test_case "minimizes" `Quick test_shrinker_minimizes ] );
      ( "driver",
        [
          Alcotest.test_case "reproducer-replayable" `Quick
            test_reproducer_replayable;
          Alcotest.test_case "smoke-corpus-200" `Slow test_smoke_corpus;
        ] );
      ( "schedule-diff",
        [
          Alcotest.test_case "one-case-per-variant" `Quick
            test_schedule_diff_clean_case;
          Alcotest.test_case "campaign-500" `Slow test_schedule_diff_campaign;
        ] );
      ( "flow-diff",
        [
          Alcotest.test_case "script-gen-deterministic" `Quick
            test_script_gen_deterministic;
          Alcotest.test_case "quick-cases" `Quick test_flow_diff_quick_cases;
          Alcotest.test_case "campaign-500-seed42" `Slow
            (flow_diff_campaign 42);
          Alcotest.test_case "campaign-500-seed7" `Slow (flow_diff_campaign 7);
        ] );
    ]
