(* Execution substrate: cache simulator, machine model, runtime values,
   interpreter and the microkernel model. *)

open Ir
open Dialects
module R = Interp.Rvalue

let ctx = Transform.Register.full_context ()
let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* ------------------------------------------------------------------ *)
(* cache simulator                                                     *)
(* ------------------------------------------------------------------ *)

let small_cache () =
  Interp.Cache.create ~name:"t" ~size_bytes:1024 ~line_bytes:64 ~ways:2
    ~hit_latency:1

let test_cache_hit_after_miss () =
  let c = small_cache () in
  check cb "first access misses" false (Interp.Cache.access c 0);
  check cb "second hits" true (Interp.Cache.access c 0);
  check cb "same line hits" true (Interp.Cache.access c 63);
  check cb "next line misses" false (Interp.Cache.access c 64)

let test_cache_lru_eviction () =
  let c = small_cache () in
  (* 2 ways, 8 sets: three lines mapping to set 0: 0, 8*64=512, 1024 *)
  ignore (Interp.Cache.access c 0);
  ignore (Interp.Cache.access c 512);
  ignore (Interp.Cache.access c 1024);
  (* line 0 was LRU and must be evicted *)
  check cb "line 0 evicted" false (Interp.Cache.access c 0);
  (* 512 was evicted now? no: after access(1024), ways held {512,1024};
     accessing 0 evicts 512 *)
  check cb "512 evicted by 0" false (Interp.Cache.access c 512)

let test_cache_working_set_fits () =
  let c = small_cache () in
  (* 1024 bytes = 16 lines exactly fill the cache; second sweep all hits *)
  for i = 0 to 15 do
    ignore (Interp.Cache.access c (i * 64))
  done;
  let hits = ref 0 in
  for i = 0 to 15 do
    if Interp.Cache.access c (i * 64) then incr hits
  done;
  check ci "second sweep all hits" 16 !hits;
  check cb "hit rate 50%" true (abs_float (Interp.Cache.hit_rate c -. 0.5) < 1e-9)

let test_cache_thrash () =
  let c = small_cache () in
  (* 32 distinct lines > capacity: streaming twice gives zero hits *)
  for _ = 1 to 2 do
    for i = 0 to 31 do
      ignore (Interp.Cache.access c (i * 64))
    done
  done;
  check cb "thrashing keeps rate 0" true (Interp.Cache.hit_rate c = 0.0)

(* ------------------------------------------------------------------ *)
(* machine model                                                       *)
(* ------------------------------------------------------------------ *)

let test_machine_costs_accumulate () =
  let m = Interp.Machine.create () in
  Interp.Machine.float_op m;
  Interp.Machine.int_op m;
  Interp.Machine.loop_iter m;
  check cb "cycles positive" true (m.Interp.Machine.cycles > 0.0);
  check ci "flops counted" 1 m.Interp.Machine.flops;
  let before = m.Interp.Machine.cycles in
  m.Interp.Machine.cost_enabled <- false;
  Interp.Machine.float_op m;
  check cb "disabled costs nothing" true (m.Interp.Machine.cycles = before)

let test_machine_memory_hierarchy () =
  let m = Interp.Machine.create () in
  Interp.Machine.memory_access m ~is_store:false 4096 4;
  let cold = m.Interp.Machine.cycles in
  Interp.Machine.memory_access m ~is_store:false 4096 4;
  let warm = m.Interp.Machine.cycles -. cold in
  check cb "warm access cheaper" true (warm < cold);
  check cb "warm is L1 latency" true
    (warm = float_of_int m.Interp.Machine.config.Interp.Machine.l1_latency)

let test_machine_alloc_alignment () =
  let m = Interp.Machine.create () in
  let a = Interp.Machine.alloc_address m 100 in
  let b = Interp.Machine.alloc_address m 100 in
  check ci "aligned" 0 (a mod 64);
  check cb "disjoint" true (b >= a + 100)

(* ------------------------------------------------------------------ *)
(* runtime views                                                       *)
(* ------------------------------------------------------------------ *)

let test_view_subview () =
  let data = Array.init 16 float_of_int in
  let buf = { R.data; base = 0; elt_bytes = 4 } in
  let v = { R.buf; offset = 0; sizes = [| 4; 4 |]; strides = [| 4; 1 |] } in
  check (Alcotest.float 0.0) "load [1;2]" 6.0 (R.load v [| 1; 2 |]);
  let sub =
    R.subview v ~offsets:[| 1; 1 |] ~sizes:[| 2; 2 |] ~strides:[| 1; 1 |]
  in
  check (Alcotest.float 0.0) "sub [0;0] = v[1;1]" 5.0 (R.load sub [| 0; 0 |]);
  check (Alcotest.float 0.0) "sub [1;1] = v[2;2]" 10.0 (R.load sub [| 1; 1 |]);
  R.store sub [| 0; 1 |] 99.0;
  check (Alcotest.float 0.0) "store through view" 99.0 (R.load v [| 1; 2 |])

let test_row_major_strides () =
  check cb "3d strides" true (R.row_major_strides [| 2; 3; 4 |] = [| 12; 4; 1 |])

(* ------------------------------------------------------------------ *)
(* interpreter pieces                                                  *)
(* ------------------------------------------------------------------ *)

let simple_fn body ~arg_types ~result_types =
  let md = Builtin.create_module () in
  let f, entry = Func.create ~name:"k" ~arg_types ~result_types () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let rs = body rw (Ircore.block_args entry) in
  Func.return rw ~operands:rs ();
  md

let run md args =
  match Interp.Compile.run_function ~ir_ctx:ctx ~module_:md ~name:"k" args with
  | Ok (rs, _) -> rs
  | Error e -> Alcotest.failf "run: %s" e

let test_arith_exec () =
  let md =
    simple_fn ~arg_types:[ Typ.i64; Typ.i64 ] ~result_types:[ Typ.i64; Typ.i1 ]
      (fun rw args ->
        let a = List.nth args 0 and b = List.nth args 1 in
        let s = Arith.addi rw a b in
        let c = Arith.cmpi rw Arith.Slt a b in
        [ s; c ])
  in
  match run md [ R.Int 3; R.Int 4 ] with
  | [ R.Int 7; R.Bool true ] -> ()
  | rs -> Alcotest.failf "got %a" Fmt.(list R.pp) rs

let test_select_exec () =
  let md =
    simple_fn ~arg_types:[ Typ.i1; Typ.f32; Typ.f32 ] ~result_types:[ Typ.f32 ]
      (fun rw args ->
        [ Arith.select rw (List.nth args 0) (List.nth args 1) (List.nth args 2) ])
  in
  (match run md [ R.Bool true; R.Float 1.0; R.Float 2.0 ] with
  | [ R.Float 1.0 ] -> ()
  | _ -> Alcotest.fail "select true");
  match run md [ R.Bool false; R.Float 1.0; R.Float 2.0 ] with
  | [ R.Float 2.0 ] -> ()
  | _ -> Alcotest.fail "select false"

let test_scf_while_exec () =
  (* while (x < 100) x = x * 2 — via scf.while *)
  let md = Builtin.create_module () in
  let f, entry =
    Func.create ~name:"k" ~arg_types:[ Typ.index ] ~result_types:[ Typ.index ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let before = Ircore.create_block ~args:[ Typ.index ] () in
  let after = Ircore.create_block ~args:[ Typ.index ] () in
  let w =
    Rewriter.build rw
      ~operands:[ Ircore.block_arg entry 0 ]
      ~result_types:[ Typ.index ]
      ~regions:[ Ircore.region_with_block before; Ircore.region_with_block after ]
      "scf.while"
  in
  let brw = Dutil.rw_at_end before in
  let hundred = Dutil.const_int brw 100 in
  let c = Arith.cmpi brw Arith.Slt (Ircore.block_arg before 0) hundred in
  ignore
    (Rewriter.build brw
       ~operands:[ c; Ircore.block_arg before 0 ]
       "scf.condition");
  let arw = Dutil.rw_at_end after in
  let two = Dutil.const_int arw 2 in
  let doubled = Arith.muli arw (Ircore.block_arg after 0) two in
  Scf.yield arw ~operands:[ doubled ] ();
  Func.return rw ~operands:[ Ircore.result w ] ();
  match run md [ R.Int 3 ] with
  | [ R.Int 192 ] -> ()
  | rs -> Alcotest.failf "got %a" Fmt.(list R.pp) rs

let test_function_calls () =
  (* callee: double; caller calls twice *)
  let md = Builtin.create_module () in
  let callee, ce = Func.create ~name:"double" ~arg_types:[ Typ.f32 ] ~result_types:[ Typ.f32 ] () in
  Ircore.insert_at_end (Builtin.body_block md) callee;
  let crw = Dutil.rw_at_end ce in
  let two = Dutil.const_float crw 2.0 in
  Func.return crw ~operands:[ Arith.mulf crw (Ircore.block_arg ce 0) two ] ();
  let f, entry = Func.create ~name:"k" ~arg_types:[ Typ.f32 ] ~result_types:[ Typ.f32 ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let c1 =
    Func.call rw ~callee:"double" ~operands:[ Ircore.block_arg entry 0 ]
      ~result_types:[ Typ.f32 ]
  in
  let c2 =
    Func.call rw ~callee:"double"
      ~operands:[ Ircore.result c1 ]
      ~result_types:[ Typ.f32 ]
  in
  Func.return rw ~operands:[ Ircore.result c2 ] ();
  match run md [ R.Float 3.0 ] with
  | [ R.Float 12.0 ] -> ()
  | rs -> Alcotest.failf "got %a" Fmt.(list R.pp) rs

let test_subview_and_metadata_exec () =
  (* func: take a 4x4 view at (1,1) of an 8x8 memref, fill it with 9.0,
     and return the extracted offset *)
  let md = Builtin.create_module () in
  let mt = Typ.memref (Typ.static_dims [ 8; 8 ]) Typ.f32 in
  let f, entry = Func.create ~name:"k" ~arg_types:[ mt ] ~result_types:[ Typ.index ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let m = Ircore.block_arg entry 0 in
  let view =
    Memref.subview rw m
      ~offsets:[ Memref.Static 1; Memref.Static 1 ]
      ~sizes:[ Memref.Static 4; Memref.Static 4 ]
      ~strides:[ Memref.Static 1; Memref.Static 1 ]
  in
  let c9 = Dutil.const_float rw 9.0 in
  let zero = Dutil.const_int rw 0 in
  let four = Dutil.const_int rw 4 in
  let one = Dutil.const_int rw 1 in
  ignore
    (Scf.build_for rw ~lb:zero ~ub:four ~step:one (fun rwi i _ ->
         ignore
           (Scf.build_for rwi ~lb:zero ~ub:four ~step:one (fun rwj j _ ->
                Memref.store rwj c9 view [ i; j ];
                []));
         []));
  let meta =
    Rewriter.build rw ~operands:[ view ]
      ~result_types:
        [ Typ.memref [] Typ.f32; Typ.index; Typ.index; Typ.index; Typ.index;
          Typ.index ]
      Memref.extract_strided_metadata_op
  in
  Func.return rw ~operands:[ Ircore.result ~index:1 meta ] ();
  let machine = Interp.Machine.create () in
  let buf = Workloads.Matmul.make_matrix machine ~rows:8 ~cols:8 ~seed:3 in
  (match
     Interp.Compile.run_function ~machine ~ir_ctx:ctx ~module_:md ~name:"k"
       [ R.Memref buf ]
   with
  | Ok ([ R.Int offset ], _) ->
    check ci "extracted offset = 1*8+1" 9 offset
  | Ok _ -> Alcotest.fail "bad result shape"
  | Error e -> Alcotest.fail e);
  (* exactly the 4x4 interior at (1,1) was written *)
  let d = buf.R.buf.R.data in
  let wrote i j = d.((i * 8) + j) = 9.0 in
  check cb "interior written" true (wrote 1 1 && wrote 4 4 && wrote 1 4);
  check cb "border untouched" true
    ((not (wrote 0 0)) && (not (wrote 0 4)) && (not (wrote 5 5)) && not (wrote 7 7))

let test_memref_copy_exec () =
  let md = Builtin.create_module () in
  let mt = Typ.memref (Typ.static_dims [ 3; 3 ]) Typ.f32 in
  let f, entry = Func.create ~name:"k" ~arg_types:[ mt; mt ] ~result_types:[] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  ignore
    (Rewriter.build rw
       ~operands:[ Ircore.block_arg entry 0; Ircore.block_arg entry 1 ]
       "memref.copy");
  Func.return rw ();
  let machine = Interp.Machine.create () in
  let src = Workloads.Matmul.make_matrix machine ~rows:3 ~cols:3 ~seed:5 in
  let dst = Workloads.Matmul.make_matrix machine ~rows:3 ~cols:3 ~seed:6 in
  (match
     Interp.Compile.run_function ~machine ~ir_ctx:ctx ~module_:md ~name:"k"
       [ R.Memref src; R.Memref dst ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check cb "copied" true (src.R.buf.R.data = dst.R.buf.R.data)

let test_alloc_exec () =
  (* allocate a scratch buffer, fill, read back *)
  let md = Builtin.create_module () in
  let mt = Typ.memref (Typ.static_dims [ 4 ]) Typ.f32 in
  let f, entry = Func.create ~name:"k" ~arg_types:[] ~result_types:[ Typ.f32 ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let buf = Memref.alloc rw mt in
  let c = Dutil.const_float rw 5.0 in
  let i2 = Dutil.const_int rw 2 in
  Memref.store rw c buf [ i2 ];
  let v = Memref.load rw buf [ i2 ] in
  Memref.dealloc rw buf;
  Func.return rw ~operands:[ v ] ();
  match Interp.Compile.run_function ~ir_ctx:ctx ~module_:md ~name:"k" [] with
  | Ok ([ R.Float 5.0 ], _) -> ()
  | Ok (rs, _) -> Alcotest.failf "got %a" Fmt.(list R.pp) rs
  | Error e -> Alcotest.fail e

let test_unsupported_op_reported () =
  let md =
    simple_fn ~arg_types:[] ~result_types:[]
      (fun rw _ ->
        ignore (Rewriter.build rw "tosa.exp" ~operands:[] ~result_types:[]);
        [])
  in
  match Interp.Compile.run_function ~ir_ctx:ctx ~module_:md ~name:"k" [] with
  | Ok _ -> Alcotest.fail "expected unsupported error"
  | Error e -> check cb "mentions op" true (String.length e > 0)

(* ------------------------------------------------------------------ *)
(* cost-model shape                                                    *)
(* ------------------------------------------------------------------ *)

let run_report md args =
  let machine = Interp.Machine.create () in
  match
    Interp.Compile.run_function ~machine ~ir_ctx:ctx ~module_:md ~name:"matmul"
      args
  with
  | Ok (_, r) -> r
  | Error e -> Alcotest.failf "run: %s" e

let matmul_seconds ?order ?transform ~m ~n ~k () =
  let md = Workloads.Matmul.build_module ?order ~m ~n ~k () in
  (match transform with
  | Some script -> (
    match Transform.Schedule.run ctx ~script ~payload:md with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Transform.Terror.to_string e))
  | None -> ());
  match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
  | Ok (_, _, _, _, r) -> r.Interp.Machine.r_seconds
  | Error e -> Alcotest.fail e

let test_vectorization_speeds_up () =
  let base = matmul_seconds ~order:Workloads.Matmul.Ikj ~m:16 ~n:32 ~k:8 () in
  let script =
    Transform.Build.script (fun rw root ->
        let loops = Transform.Build.match_op rw ~name:"scf.for" root in
        let inner = Transform.Build.match_op rw ~select:"third" ~name:"scf.for" root in
        ignore loops;
        ignore (Transform.Build.loop_vectorize rw ~width:8 inner))
  in
  let vec =
    matmul_seconds ~order:Workloads.Matmul.Ikj ~transform:script ~m:16 ~n:32
      ~k:8 ()
  in
  check cb "vectorized faster" true (vec < base /. 2.0)

let test_unroll_reduces_loop_overhead () =
  let base = matmul_seconds ~m:8 ~n:8 ~k:8 () in
  let script =
    Transform.Build.script (fun rw root ->
        let inner = Transform.Build.match_op rw ~select:"third" ~name:"scf.for" root in
        Transform.Build.loop_unroll_full rw inner)
  in
  let unrolled = matmul_seconds ~transform:script ~m:8 ~n:8 ~k:8 () in
  check cb "unrolled faster" true (unrolled < base)

let test_microkernel_cost () =
  ignore run_report;
  let machine = Interp.Machine.create () in
  let a = Workloads.Matmul.make_matrix machine ~rows:16 ~cols:16 ~seed:1 in
  let b = Workloads.Matmul.make_matrix machine ~rows:16 ~cols:16 ~seed:2 in
  let c = Workloads.Matmul.make_matrix machine ~rows:16 ~cols:16 ~seed:3 in
  let c0 = Array.copy c.R.buf.R.data in
  ignore
    (Interp.Extern.libxsmm_gemm machine [ R.Memref a; R.Memref b; R.Memref c ]);
  let expected = Workloads.Matmul.reference ~m:16 ~n:16 ~k:16 a b c0 in
  check cb "gemm semantics" true
    (Workloads.Matmul.max_abs_diff expected c.R.buf.R.data < 1e-4);
  check ci "flops accounted" (2 * 16 * 16 * 16) machine.Interp.Machine.flops

let test_microkernel_rejects_unsupported () =
  let machine = Interp.Machine.create () in
  let a = Workloads.Matmul.make_matrix machine ~rows:100 ~cols:16 ~seed:1 in
  let b = Workloads.Matmul.make_matrix machine ~rows:16 ~cols:16 ~seed:2 in
  let c = Workloads.Matmul.make_matrix machine ~rows:100 ~cols:16 ~seed:3 in
  match
    Interp.Extern.libxsmm_gemm machine [ R.Memref a; R.Memref b; R.Memref c ]
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure for m=100"

(* ------------------------------------------------------------------ *)
(* parallel model (scf.forall)                                         *)
(* ------------------------------------------------------------------ *)

let forall_module n =
  let md = Builtin.create_module () in
  let mt = Typ.memref (Typ.static_dims [ n ]) Typ.f32 in
  let f, entry = Func.create ~name:"k" ~arg_types:[ mt ] ~result_types:[] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let out = Ircore.block_arg entry 0 in
  let v = Dutil.const_float rw 1.0 in
  let body = Ircore.create_block ~args:[ Typ.index ] () in
  let brw = Dutil.rw_at_end body in
  (* a little compute per iteration *)
  let x = Arith.mulf brw v v in
  let y = Arith.addf brw x v in
  Memref.store brw y out [ Ircore.block_arg body 0 ];
  ignore
    (Rewriter.build rw
       ~regions:[ Ircore.region_with_block body ]
       ~attrs:[ ("static_upper_bound", Attr.Int_array [ n ]) ]
       "scf.forall");
  Func.return rw ();
  md

let forall_seconds ~threads n =
  let config = { Interp.Machine.default_config with num_threads = threads } in
  let machine = Interp.Machine.create ~config () in
  let out = Workloads.Matmul.make_matrix machine ~rows:1 ~cols:n ~seed:1 in
  let view = { out with R.sizes = [| n |]; strides = [| 1 |] } in
  match
    Interp.Compile.run_function ~machine ~ir_ctx:ctx ~module_:(forall_module n)
      ~name:"k" [ R.Memref view ]
  with
  | Ok (_, r) ->
    (* semantics unchanged by the parallel model *)
    Alcotest.(check bool)
      "all written" true
      (Array.for_all (fun x -> x = 2.0) view.R.buf.R.data);
    r.Interp.Machine.r_seconds
  | Error e -> Alcotest.fail e

let test_forall_parallel_speedup () =
  let n = 4096 in
  let t1 = forall_seconds ~threads:1 n in
  let t8 = forall_seconds ~threads:8 n in
  let speedup = t1 /. t8 in
  check cb
    (Fmt.str "8 threads give near-linear speedup (got %.1fx)" speedup)
    true
    (speedup > 5.0 && speedup <= 8.5)

let test_forall_fork_overhead_dominates_small () =
  (* a tiny parallel region should not benefit *)
  let t1 = forall_seconds ~threads:1 4 in
  let t8 = forall_seconds ~threads:8 4 in
  check cb "fork cost dominates tiny regions" true (t8 >= t1 *. 0.9)

(* ------------------------------------------------------------------ *)
(* property: interpreter agrees with direct evaluation                  *)
(* ------------------------------------------------------------------ *)

type expr = X | Y | Const of float | Add of expr * expr | Mul of expr * expr | Sub of expr * expr

let rec eval_expr x y = function
  | X -> x
  | Y -> y
  | Const c -> c
  | Add (a, b) -> eval_expr x y a +. eval_expr x y b
  | Mul (a, b) -> eval_expr x y a *. eval_expr x y b
  | Sub (a, b) -> eval_expr x y a -. eval_expr x y b

let rec build_expr rw xv yv = function
  | X -> xv
  | Y -> yv
  | Const c -> Dutil.const_float rw c
  | Add (a, b) -> Arith.addf rw (build_expr rw xv yv a) (build_expr rw xv yv b)
  | Mul (a, b) -> Arith.mulf rw (build_expr rw xv yv a) (build_expr rw xv yv b)
  | Sub (a, b) ->
    Rewriter.build1 rw
      ~operands:[ build_expr rw xv yv a; build_expr rw xv yv b ]
      ~result_types:[ Typ.f32 ] "arith.subf"

let gen_expr =
  let open QCheck.Gen in
  sized
    (fix (fun self n ->
         if n <= 0 then
           oneof
             [ return X; return Y; map (fun c -> Const (float_of_int c)) (int_range (-4) 4) ]
         else
           oneof
             [
               map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Sub (a, b)) (self (n / 2)) (self (n / 2));
             ]))

let prop_interp_matches_direct_eval =
  QCheck.Test.make ~count:100
    ~name:"interpreter matches direct evaluation on random expressions"
    (QCheck.make gen_expr)
    (fun e ->
      let md =
        simple_fn ~arg_types:[ Typ.f32; Typ.f32 ] ~result_types:[ Typ.f32 ]
          (fun rw args ->
            [ build_expr rw (List.nth args 0) (List.nth args 1) e ])
      in
      let x = 1.25 and y = -0.5 in
      match run md [ R.Float x; R.Float y ] with
      | [ R.Float v ] ->
        let expected = eval_expr x y e in
        Float.abs (v -. expected) <= 1e-6 *. Float.max 1.0 (Float.abs expected)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* fusion model                                                        *)
(* ------------------------------------------------------------------ *)

let test_fusion_model_basics () =
  let md = Workloads.Llm.build ~layers:2 () in
  let est = Interp.Fusion_model.estimate (Workloads.Llm.func_of md) in
  check cb "positive time" true (est.Interp.Fusion_model.total_seconds > 0.0);
  check cb "several clusters" true (est.Interp.Fusion_model.num_clusters > 4);
  check cb "flops counted" true (est.Interp.Fusion_model.total_flops > 0)

let test_fusion_model_culprit_regresses () =
  let estimate patterns =
    let md = Workloads.Llm.build ~layers:2 () in
    let script =
      Transform.Build.script (fun rw root ->
          let f = Transform.Build.match_op rw ~name:"func.func" root in
          if patterns <> [] then Transform.Build.apply_patterns rw f patterns)
    in
    (match Transform.Schedule.run ctx ~script ~payload:md with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Transform.Terror.to_string e));
    (Interp.Fusion_model.estimate (Workloads.Llm.func_of md))
      .Interp.Fusion_model.total_seconds
  in
  let baseline = estimate [] in
  let with_culprit = estimate [ Shlo_patterns.culprit ] in
  check cb "culprit alone regresses" true (with_culprit > baseline)

let () =
  Alcotest.run "interp"
    [
      ( "cache",
        [
          Alcotest.test_case "hit after miss" `Quick test_cache_hit_after_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "working set fits" `Quick
            test_cache_working_set_fits;
          Alcotest.test_case "thrash" `Quick test_cache_thrash;
        ] );
      ( "machine",
        [
          Alcotest.test_case "costs accumulate" `Quick
            test_machine_costs_accumulate;
          Alcotest.test_case "memory hierarchy" `Quick
            test_machine_memory_hierarchy;
          Alcotest.test_case "alloc alignment" `Quick test_machine_alloc_alignment;
        ] );
      ( "views",
        [
          Alcotest.test_case "subview composition" `Quick test_view_subview;
          Alcotest.test_case "row-major strides" `Quick test_row_major_strides;
        ] );
      ( "exec",
        [
          Alcotest.test_case "arith" `Quick test_arith_exec;
          Alcotest.test_case "select" `Quick test_select_exec;
          Alcotest.test_case "scf.while" `Quick test_scf_while_exec;
          Alcotest.test_case "function calls" `Quick test_function_calls;
          Alcotest.test_case "subview + metadata" `Quick
            test_subview_and_metadata_exec;
          Alcotest.test_case "memref.copy" `Quick test_memref_copy_exec;
          Alcotest.test_case "alloc/store/load/dealloc" `Quick test_alloc_exec;
          Alcotest.test_case "unsupported op reported" `Quick
            test_unsupported_op_reported;
        ] );
      ( "cost-shape",
        [
          Alcotest.test_case "vectorization speeds up" `Quick
            test_vectorization_speeds_up;
          Alcotest.test_case "unroll reduces overhead" `Quick
            test_unroll_reduces_loop_overhead;
          Alcotest.test_case "microkernel cost+semantics" `Quick
            test_microkernel_cost;
          Alcotest.test_case "microkernel rejects sizes" `Quick
            test_microkernel_rejects_unsupported;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "forall speedup" `Quick test_forall_parallel_speedup;
          Alcotest.test_case "fork overhead on tiny regions" `Quick
            test_forall_fork_overhead_dominates_small;
        ] );
      ( "props",
        [ QCheck_alcotest.to_alcotest prop_interp_matches_direct_eval ] );
      ( "fusion",
        [
          Alcotest.test_case "basics" `Quick test_fusion_model_basics;
          Alcotest.test_case "culprit regresses" `Quick
            test_fusion_model_culprit_regresses;
        ] );
    ]
