// otd-fuzz crash reproducer
// oracle: differential
// seed: 42 case: 1
// detail: execution failed after pipeline: interpreter: cannot execute op llvm.alloca — finalize-memref-to-llvm lowered memref.alloc to a size-less "llvm.alloca"() : () -> !llvm.ptr, dropping the static shape entirely, so neither the interpreter nor the cache model could know the allocation size
// configuration: --pass-pipeline=convert-scf-to-cf,convert-arith-to-llvm,convert-cf-to-llvm,convert-func-to-llvm,expand-strided-metadata,finalize-memref-to-llvm,reconcile-unrealized-casts
"builtin.module"() ({
  "func.func"() ({
    %0 = "memref.alloc"() : () -> memref<4xf64>
    %1 = "arith.constant"() {value = 0x1.8p+1 : f64} : () -> f64
    %2 = "arith.constant"() {value = 2 : index} : () -> index
    "memref.store"(%1, %0, %2) : (f64, memref<4xf64>, index) -> ()
    %3 = "memref.load"(%0, %2) : (memref<4xf64>, index) -> f64
    "func.return"(%3) : (f64) -> ()
  }) {sym_name = "main", function_type = () -> f64} : () -> ()
}) : () -> ()
