// otd-fuzz crash reproducer
// oracle: differential
// seed: 42 case: 2
// detail: pipeline failed on valid IR: pass reconcile-unrealized-casts: failed to legalize operation 'builtin.unrealized_conversion_cast' (1 remaining) — convert-arith-to-llvm left arith.select/arith.maxsi/arith.minsi/arith.sitofp unconverted, so the casts feeding them could not be cancelled
// configuration: --pass-pipeline=convert-scf-to-cf,convert-arith-to-llvm,convert-cf-to-llvm,convert-func-to-llvm,expand-strided-metadata,finalize-memref-to-llvm,reconcile-unrealized-casts
"builtin.module"() ({
  "func.func"() ({
    %0 = "arith.constant"() {value = 3 : i64} : () -> i64
    %1 = "arith.constant"() {value = -5 : i64} : () -> i64
    %2 = "arith.maxsi"(%0, %1) : (i64, i64) -> i64
    %3 = "arith.minsi"(%0, %1) : (i64, i64) -> i64
    %4 = "arith.cmpi"(%2, %3) {predicate = "slt"} : (i64, i64) -> i1
    %5 = "arith.select"(%4, %2, %3) : (i1, i64, i64) -> i64
    %6 = "arith.sitofp"(%5) : (i64) -> f64
    "func.return"(%5, %6) : (i64, f64) -> ()
  }) {sym_name = "main", function_type = () -> (i64, f64)} : () -> ()
}) : () -> ()
