// otd-fuzz crash reproducer
// oracle: differential
// seed: 42 case: 5
// detail: execution failed after pipeline: interpreter: cannot execute op llvm.icmp — the interpreter knew the branch/call subset of the llvm dialect but none of the compute ops the arith lowering produces (llvm.add/llvm.icmp/llvm.select/...), so lowered modules could not be differentially executed at all
// configuration: --pass-pipeline=convert-scf-to-cf,convert-arith-to-llvm,convert-cf-to-llvm,convert-func-to-llvm,expand-strided-metadata,finalize-memref-to-llvm,reconcile-unrealized-casts
"builtin.module"() ({
  "func.func"() ({
    %0 = "arith.constant"() {value = 7 : i64} : () -> i64
    %1 = "arith.constant"() {value = 9 : i64} : () -> i64
    %2 = "arith.addi"(%0, %1) : (i64, i64) -> i64
    %3 = "arith.muli"(%2, %0) : (i64, i64) -> i64
    %4 = "arith.cmpi"(%3, %1) {predicate = "sgt"} : (i64, i64) -> i1
    "func.return"(%3, %4) : (i64, i1) -> ()
  }) {sym_name = "main", function_type = () -> (i64, i1)} : () -> ()
}) : () -> ()
