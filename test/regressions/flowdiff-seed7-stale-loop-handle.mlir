// otd-fuzz crash reproducer
// oracle: flow-diff
// seed: 7 case: 106 (minimized by hand)
// detail: a handle held every scf.for; canonicalizing through that handle
// let the single-trip middle loop be erased, and the splice left the
// original inner loop as a detached corpse with cleared operands.
// State.prune kept the corpse (its op_parent still pointed into the
// detached region), so the next transform on the same handle indexed
// operand 0 of it: Invalid_argument("index out of bounds").
// configuration: --transform=flowdiff-seed7-stale-loop-handle-script.mlir
"builtin.module"() ({
  "func.func"() ({
    %lb = "arith.constant"() {value = 0 : index} : () -> index
    %one = "arith.constant"() {value = 1 : index} : () -> index
    %ub = "arith.constant"() {value = 8 : index} : () -> index
    "scf.for"(%lb, %ub, %one) ({
    ^bb0(%i: index):
      "scf.for"(%lb, %one, %one) ({
      ^bb1(%j: index):
        "scf.for"(%lb, %ub, %one) ({
        ^bb2(%k: index):
          "scf.yield"() : () -> ()
        }) : (index, index, index) -> ()
        "scf.yield"() : () -> ()
      }) : (index, index, index) -> ()
      "scf.yield"() : () -> ()
    }) : (index, index, index) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "stale_handle", function_type = () -> ()} : () -> ()
}) : () -> ()
