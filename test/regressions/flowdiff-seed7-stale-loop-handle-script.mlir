// transform script for flowdiff-seed7-stale-loop-handle.mlir: canonicalize
// through a select=all scf.for handle, then reuse the same (now stale)
// handle for loop_tile
"builtin.module"() ({
  "transform.named_sequence"() ({
  ^bb0(%root: !transform.any_op):
    %loops = "transform.match_op"(%root) {op_name = "scf.for", select = "all"} : (!transform.any_op) -> !transform.any_op
    %after = "transform.apply_registered_pass"(%loops) {pass_name = "canonicalize"} : (!transform.any_op) -> !transform.any_op
    %tiled:2 = "transform.loop_tile"(%loops) {tile_sizes = array<i64: 4>} : (!transform.any_op) -> (!transform.any_op, !transform.any_op)
    "transform.yield"() : () -> ()
  }) {sym_name = "__transform_main"} : () -> ()
}) : () -> ()
