(* Transactional-execution recovery tests: payload checkpoint/rollback
   under [transform.alternatives] and [failures(suppress)] sequences,
   exception containment at the interpreter boundary, execution budgets,
   and a fault-injection smoke campaign.

   The deliberately-misbehaving transforms below mutate the payload
   *before* failing — the worst case for rollback: a correct
   implementation must restore the payload byte-for-byte and leave the
   handle table usable. *)

open Ir
open Testutil
module T = Transform

(* ------------------------------------------------------------------ *)
(* test-only transforms                                                *)
(* ------------------------------------------------------------------ *)

let mutate_then_fail_op = "transform.test_mutate_then_fail"
let raise_op = "transform.test_raise"

(* Registered at module initialization; the registry is global, so unique
   names keep this safe even though every test binary links this module. *)
let () =
  T.Treg.register ~name:mutate_then_fail_op
    ~spec:
      {
        T.Treg.default_spec with
        summary = "stamp every target payload op, then fail silenceably";
      }
    (fun st op ->
      match T.State.lookup_handle st (Ircore.operand ~index:0 op) with
      | Error _ as e -> e
      | Ok payload ->
        List.iter
          (fun p -> Ircore.set_attr p "test.mutated" Attr.Unit)
          payload;
        T.Terror.silenceable ~loc:op.Ircore.op_loc
          "test transform failed after mutating %d payload op(s)"
          (List.length payload));
  T.Treg.register ~name:raise_op
    ~spec:
      {
        T.Treg.default_spec with
        summary = "raise an OCaml exception mid-transform";
      }
    (fun st op ->
      (match T.State.lookup_handle st (Ircore.operand ~index:0 op) with
      | Ok (p :: _) -> Ircore.set_attr p "test.mutated" Attr.Unit
      | _ -> ());
      failwith "boom: deliberate test exception")

let mutate_then_fail rw target =
  ignore (Rewriter.build rw ~operands:[ target ] mutate_then_fail_op)

let raise_transform rw target =
  ignore (Rewriter.build rw ~operands:[ target ] raise_op)

let mutated_count md =
  List.length (Symbol.collect md ~f:(fun o -> Ircore.has_attr o "test.mutated"))

let counter_value component name =
  match Stats.find_counter ~component name with
  | Some c -> Stats.value c
  | None -> Alcotest.failf "missing stats counter %s/%s" component name

(* ------------------------------------------------------------------ *)
(* alternatives: rollback + handle usability                           *)
(* ------------------------------------------------------------------ *)

let test_alternatives_rollback_byte_identical () =
  let md = matmul () in
  let pre = Printer.op_to_string md in
  let rollbacks0 = counter_value "transform" "rollbacks" in
  let script =
    T.Build.script (fun rw root ->
        T.Build.alternatives rw
          [
            (fun brw -> mutate_then_fail brw root);
            (* read-only fallback: the payload must end up untouched *)
            (fun brw ->
              ignore (T.Build.match_op brw ~name:"func.func" root));
          ])
  in
  ignore (apply_ok script md);
  check cb "payload restored byte-for-byte" true
    (String.equal pre (Printer.op_to_string md));
  check ci "no mutation stamp survives" 0 (mutated_count md);
  check cb "rollback counter advanced" true
    (counter_value "transform" "rollbacks" > rollbacks0);
  check_verifies "payload after rollback" md

let test_alternatives_handles_usable_after_rollback () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        (* the handle is captured before the checkpoint; after rollback it
           must be remapped onto the restored payload and stay usable *)
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        T.Build.alternatives rw
          [
            (fun brw -> mutate_then_fail brw loop);
            (fun brw -> T.Build.annotate brw ~name:"survivor" loop);
          ])
  in
  ignore (apply_ok script md);
  check ci "handle resolved to exactly one restored loop" 1
    (List.length
       (Symbol.collect md ~f:(fun o -> Ircore.has_attr o "survivor")));
  check ci "first region's mutation rolled back" 0 (mutated_count md)

let test_alternatives_definite_aborts_immediately () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        T.Build.alternatives rw
          [
            (* match_op with no filter is a definite error: later regions
               must NOT be tried *)
            (fun brw -> ignore (T.Build.match_op brw root));
            (fun brw -> T.Build.annotate brw ~name:"reached" root);
          ])
  in
  (match apply_err script md with
  | T.Terror.Definite _ -> ()
  | T.Terror.Silenceable d ->
    Alcotest.failf "expected definite abort, got silenceable: %s"
      (Diag.message d));
  check ci "second region never ran" 0
    (List.length (Symbol.collect md ~f:(fun o -> Ircore.has_attr o "reached")))

(* ------------------------------------------------------------------ *)
(* failures(suppress)                                                  *)
(* ------------------------------------------------------------------ *)

let test_suppress_rolls_back_and_downgrades () =
  let md = matmul () in
  let pre = Printer.op_to_string md in
  let captured = ref [] in
  let script =
    T.Build.script (fun rw _root ->
        ignore
          (T.Build.nested_sequence rw ~failure_propagation:"suppress"
             (fun brw seq_root -> mutate_then_fail brw seq_root)))
  in
  let result =
    Context.with_diag_handler ctx
      (fun d -> captured := d :: !captured)
      (fun () -> apply script md)
  in
  (match result with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "suppress must swallow the failure: %s"
      (T.Terror.to_string e));
  check cb "payload restored byte-for-byte" true
    (String.equal pre (Printer.op_to_string md));
  let warnings =
    List.filter (fun d -> Diag.severity d = Diag.Warning) !captured
  in
  check cb "downgraded warning emitted" true (warnings <> []);
  check cb "warning notes mention suppression" true
    (List.exists
       (fun d ->
         List.exists
           (fun n -> contains (Diag.message n) "failures(suppress)")
           (Diag.notes d))
       warnings)

let test_propagate_is_the_default () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root -> mutate_then_fail rw root)
  in
  match apply_err script md with
  | T.Terror.Silenceable _ -> ()
  | T.Terror.Definite d ->
    Alcotest.failf "expected silenceable propagation: %s" (Diag.message d)

let test_bad_failure_propagation_rejected () =
  let seq =
    T.Build.sequence ~failure_propagation:"sometimes" (fun _rw _root -> ())
  in
  match Verifier.verify ctx seq with
  | Ok () -> Alcotest.fail "verifier accepted failures(sometimes)"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* exception containment                                               *)
(* ------------------------------------------------------------------ *)

let test_exception_becomes_definite_with_backtrace () =
  Printexc.record_backtrace true;
  let md = matmul () in
  let contained0 = counter_value "transform" "exceptions_contained" in
  let script = T.Build.script (fun rw root -> raise_transform rw root) in
  (match apply_err script md with
  | T.Terror.Definite d ->
    check cb "message names the exception barrier" true
      (contains (Diag.message d) "raised an exception");
    check cb "message carries the original failure" true
      (contains (Diag.message d) "boom");
    check cb "diagnostic has notes (backtrace or fallback)" true
      (Diag.notes d <> [])
  | T.Terror.Silenceable d ->
    Alcotest.failf "expected definite error: %s" (Diag.message d));
  check cb "containment counter advanced" true
    (counter_value "transform" "exceptions_contained" > contained0);
  (* the crash left its mutation in place (no enclosing checkpoint), but
     the payload must still verify — containment, not corruption *)
  check_verifies "payload after contained exception" md

let test_exception_inside_alternatives_rolls_back () =
  (* a definite error (from the barrier) aborts alternatives, and the
     checkpointed region is still discarded without corrupting state *)
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        T.Build.alternatives rw [ (fun brw -> raise_transform brw root) ])
  in
  (match apply_err script md with
  | T.Terror.Definite _ -> ()
  | T.Terror.Silenceable d ->
    Alcotest.failf "expected definite error: %s" (Diag.message d));
  check_verifies "payload after aborted alternatives" md

(* ------------------------------------------------------------------ *)
(* foreach over erased payload                                         *)
(* ------------------------------------------------------------------ *)

let test_foreach_dangling_payload_is_silenceable () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        (* all three nested loops; fully unrolling the outermost erases
           the inner two, so iteration 2 sees a dangling payload op *)
        let loops = T.Build.match_op rw ~name:"scf.for" root in
        let body = Ircore.create_block ~args:[ Typ.transform_any_op ] () in
        let brw = Rewriter.create ~ip:(Builder.At_end body) () in
        T.Build.loop_unroll_full brw (Ircore.block_arg body 0);
        ignore
          (Rewriter.build rw ~operands:[ loops ]
             ~regions:[ Ircore.region_with_block body ]
             T.Ops.foreach_op))
  in
  match apply_err script md with
  | T.Terror.Silenceable d ->
    check cb "diagnostic names the dangling iteration" true
      (contains (Diag.message d) "erased or invalidated")
  | T.Terror.Definite d ->
    Alcotest.failf "expected clean silenceable diagnostic: %s"
      (Diag.message d)

(* ------------------------------------------------------------------ *)
(* execution budgets                                                   *)
(* ------------------------------------------------------------------ *)

let test_step_budget_exhaustion () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        (* five interpreter steps: well past a budget of 2 *)
        for _ = 1 to 5 do
          ignore (T.Build.match_op rw ~name:"scf.for" root)
        done)
  in
  let b = Budget.create ~max_steps:2 () in
  (match Budget.with_budget b (fun () -> apply script md) with
  | Error (T.Terror.Silenceable d) ->
    check cb "diagnostic names the step budget" true
      (contains (Diag.message d) "step budget")
  | Error (T.Terror.Definite d) ->
    Alcotest.failf "expected silenceable budget stop: %s" (Diag.message d)
  | Ok _ -> Alcotest.fail "expected the step budget to trip");
  check cb "exhaustion is sticky" true (Budget.exhausted b <> None)

(* a function whose body is one long constant-fold chain: canonicalize
   wants to fold all of it, the budget lets it fold almost none *)
let fold_chain_module n =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "\"builtin.module\"() ({\n\
    \  \"func.func\"() ({\n\
    \    %0 = \"arith.constant\"() {value = 1 : i64} : () -> i64\n";
  for i = 1 to n do
    Buffer.add_string buf
      (Fmt.str "    %%%d = \"arith.addi\"(%%%d, %%%d) : (i64, i64) -> i64\n"
         i (i - 1) (i - 1))
  done;
  Buffer.add_string buf
    (Fmt.str
       "    \"func.return\"(%%%d) : (i64) -> ()\n\
       \  }) {sym_name = \"main\", function_type = () -> i64} : () -> ()\n\
        }) : () -> ()\n"
       n);
  match Parser.parse_module (Buffer.contents buf) with
  | Ok m -> m
  | Error e -> Alcotest.failf "fold-chain module: parse error: %s" e

let test_rewrite_budget_on_unrolled_fold_chain () =
  let md = fold_chain_module 30 in
  let b = Budget.create ~max_rewrites:3 () in
  Context.with_diag_handler ctx ignore (fun () ->
      Budget.with_budget b (fun () ->
          match run_pipeline [ "canonicalize" ] md with
          | Ok () -> ()
          | Error e -> Alcotest.failf "canonicalize failed: %s" e));
  (match Budget.exhausted b with
  | Some reason ->
    check cb "reason names the rewrite budget" true
      (contains reason "rewrite budget")
  | None -> Alcotest.fail "expected the rewrite budget to trip");
  check cb "budget counted past the limit" true (Budget.rewrites b > 3);
  check_verifies "payload after budget stop" md

let test_deadline_exhaustion () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        for _ = 1 to 200 do
          ignore (T.Build.match_op rw ~name:"scf.for" root)
        done)
  in
  (* a deadline already in the past: the forced pass-boundary /
     amortized interpreter checks must stop the run *)
  let b = Budget.create ~deadline_ms:0 () in
  Unix.sleepf 0.002;
  match Budget.with_budget b (fun () -> apply script md) with
  | Error (T.Terror.Silenceable d) ->
    check cb "diagnostic names the deadline" true
      (contains (Diag.message d) "deadline")
  | Error (T.Terror.Definite d) ->
    Alcotest.failf "expected silenceable deadline stop: %s" (Diag.message d)
  | Ok _ -> Alcotest.fail "expected the deadline to trip"

(* ------------------------------------------------------------------ *)
(* fault-injection smoke run                                           *)
(* ------------------------------------------------------------------ *)

let test_fault_injection_smoke () =
  let stats =
    Fuzz.Fault.run_campaign ~prob:0.5 ctx ~seed:42 ~cases:40 ()
  in
  check ci "no recovery-invariant violations" 0
    (List.length stats.Fuzz.Fault.fs_violations);
  check cb "campaign actually injected faults" true
    (stats.Fuzz.Fault.fs_injected > 0);
  check cb "byte-identical rollbacks were verified" true
    (stats.Fuzz.Fault.fs_rollbacks_verified > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "recovery"
    [
      ( "alternatives",
        [
          Alcotest.test_case "rollback is byte-identical" `Quick
            test_alternatives_rollback_byte_identical;
          Alcotest.test_case "handles usable after rollback" `Quick
            test_alternatives_handles_usable_after_rollback;
          Alcotest.test_case "definite error aborts immediately" `Quick
            test_alternatives_definite_aborts_immediately;
        ] );
      ( "failure-propagation",
        [
          Alcotest.test_case "suppress rolls back and downgrades" `Quick
            test_suppress_rolls_back_and_downgrades;
          Alcotest.test_case "propagate is the default" `Quick
            test_propagate_is_the_default;
          Alcotest.test_case "bad mode rejected by verifier" `Quick
            test_bad_failure_propagation_rejected;
        ] );
      ( "exception-containment",
        [
          Alcotest.test_case "exception becomes definite + backtrace" `Quick
            test_exception_becomes_definite_with_backtrace;
          Alcotest.test_case "exception inside alternatives" `Quick
            test_exception_inside_alternatives_rolls_back;
        ] );
      ( "foreach",
        [
          Alcotest.test_case "dangling payload is silenceable" `Quick
            test_foreach_dangling_payload_is_silenceable;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "step budget" `Quick test_step_budget_exhaustion;
          Alcotest.test_case "rewrite budget on fold chain" `Quick
            test_rewrite_budget_on_unrolled_fold_chain;
          Alcotest.test_case "deadline" `Quick test_deadline_exhaustion;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "smoke campaign, zero violations" `Quick
            test_fault_injection_smoke;
        ] );
    ]
