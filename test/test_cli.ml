(* End-to-end tests of the otd-opt executable: the observability flags
   (--timing --print-ir-after-all --trace --diagnostics=json) produce a
   parseable JSON report, and a crash reproducer written on pass failure
   reproduces the same failure when fed back in. *)

open Ir

let check = Alcotest.check
let cb = Alcotest.bool
let cs = Alcotest.string

(* tests run from _build/default/test *)
let otd_opt = Filename.concat ".." (Filename.concat "bin" "otd_opt.exe")

let payload =
  Filename.concat ".."
    (Filename.concat "examples" (Filename.concat "scripts" "payload_matmul.mlir"))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Run [otd_opt args], returning (exit code, stdout, stderr). *)
let run_otd_opt args =
  let out = Filename.temp_file "otd_out" ".txt" in
  let err = Filename.temp_file "otd_err" ".txt" in
  let cmd =
    Fmt.str "%s %s > %s 2> %s" (Filename.quote otd_opt)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout, stderr)

let member_exn key j =
  match Json.member key j with
  | Some v -> v
  | None -> Alcotest.failf "JSON report lacks key %S" key

let test_json_report () =
  let code, stdout, stderr =
    run_otd_opt
      [
        payload; "-p"; "canonicalize,cse"; "--timing"; "--print-ir-after-all";
        "--trace"; "--diagnostics=json";
      ]
  in
  check Alcotest.int "exit code" 0 code;
  match Json.parse (String.trim stdout) with
  | Error e -> Alcotest.failf "stdout is not valid JSON: %s\n%s" e stderr
  | Ok j ->
    check cb "success" true (Json.member "success" j = Some (Json.Bool true));
    check cb "diagnostics list" true
      (Option.is_some (Json.to_list (member_exn "diagnostics" j)));
    (* trace reports engine activity: the greedy driver runs per pass *)
    let trace = Option.get (Json.to_list (member_exn "trace" j)) in
    let greedy_events =
      List.filter
        (fun e -> Json.member "kind" e = Some (Json.String "greedy"))
        trace
    in
    check cb "trace greedy events" true (greedy_events <> []);
    (* timing tree root spans the pipeline with one child per pass *)
    let timing = member_exn "timing" j in
    check cs "timing root" "pipeline"
      (Option.get (Option.bind (Json.member "name" timing) Json.to_string_opt));
    check Alcotest.int "timing children" 2
      (List.length (Option.get (Json.to_list (member_exn "children" timing))));
    (* --print-ir-after-all in JSON mode captures per-pass IR snapshots *)
    let ir_after = Option.get (Json.to_list (member_exn "ir_after" j)) in
    check Alcotest.int "one snapshot per pass" 2 (List.length ir_after);
    (* the final module rides along and still parses as IR *)
    let output =
      Option.get (Json.to_string_opt (member_exn "output" j))
    in
    (match Ir.Parser.parse_module output with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "output IR does not parse: %s" e);
    ignore (member_exn "op_count_deltas" j)

let test_json_failure_report () =
  let code, stdout, _ =
    run_otd_opt
      [
        payload; "-p";
        "finalize-memref-to-llvm,reconcile-unrealized-casts";
        "--diagnostics=json";
      ]
  in
  check cb "nonzero exit" true (code <> 0);
  match Json.parse (String.trim stdout) with
  | Error e -> Alcotest.failf "stdout is not valid JSON: %s" e
  | Ok j ->
    check cb "success false" true
      (Json.member "success" j = Some (Json.Bool false));
    check cb "null output on failure" true
      (Json.member "output" j = Some Json.Null);
    let diags = Option.get (Json.to_list (member_exn "diagnostics" j)) in
    check cb "error diagnostic present" true
      (List.exists
         (fun d ->
           Json.member "severity" d = Some (Json.String "error")
           && (match Json.member "message" d with
              | Some (Json.String m) -> contains m "failed to legalize"
              | _ -> false))
         diags)

let test_reproducer_roundtrip () =
  let repro = Filename.temp_file "otd_repro" ".mlir" in
  (* induce a failure: leftover unrealized casts are illegal *)
  let code, _, stderr =
    run_otd_opt
      [
        payload; "-p";
        "finalize-memref-to-llvm,reconcile-unrealized-casts";
        "--reproducer"; repro;
      ]
  in
  check cb "pipeline fails" true (code <> 0);
  check cb "failure diagnosed" true
    (contains stderr "failed to legalize");
  let content = read_file repro in
  check cb "reproducer names pass" true
    (contains content "// failing pass: reconcile-unrealized-casts");
  check cb "reproducer embeds pipeline" true
    (contains content
       "// configuration: --pass-pipeline=reconcile-unrealized-casts");
  (* feeding the reproducer back (no -p) replays the embedded pipeline and
     reproduces the same failure *)
  let code', _, stderr' = run_otd_opt [ repro ] in
  Sys.remove repro;
  check cb "replay fails too" true (code' <> 0);
  check cb "replay announced" true
    (contains stderr' "replaying reproducer pipeline");
  check cb "same failure reproduced" true
    (contains stderr' "failed to legalize")

let test_text_reports_on_stderr () =
  let code, stdout, stderr =
    run_otd_opt [ payload; "-p"; "canonicalize"; "--timing"; "--trace" ]
  in
  check Alcotest.int "exit code" 0 code;
  (* stdout carries only the module *)
  check cb "module on stdout" true (contains stdout "builtin.module");
  check cb "no report on stdout" false (contains stdout "// trace:");
  (* reports go to stderr *)
  check cb "timing header" true (contains stderr "// -----// timing //----- //");
  check cb "trace lines" true (contains stderr "// trace: greedy on")

(* ---------------- otd-check: --schedule / --flow agreement ---------------- *)

let otd_check = Filename.concat ".." (Filename.concat "bin" "otd_check.exe")

let script_file =
  Filename.concat ".."
    (Filename.concat "examples"
       (Filename.concat "scripts" "tile_and_unroll.mlir"))

let run_otd_check args =
  let out = Filename.temp_file "otd_check_out" ".txt" in
  let err = Filename.temp_file "otd_check_err" ".txt" in
  let cmd =
    Fmt.str "%s %s > %s 2> %s" (Filename.quote otd_check)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout, stderr)

(* the value of a "<label> <form>" report line, e.g. "form:          compiled"
   or "schedule form: interpreted (...)" *)
let form_line ~label stdout =
  String.split_on_char '\n' stdout
  |> List.find_map (fun line ->
         let n = String.length label in
         if String.length line >= n && String.sub line 0 n = label then
           Some (String.trim (String.sub line n (String.length line - n)))
         else None)

let check_forms_agree stdout =
  match (form_line ~label:"form:" stdout, form_line ~label:"schedule form:" stdout)
  with
  | Some sched, Some flow ->
    check cs "--schedule and --flow report the same schedule form" sched flow
  | _ -> Alcotest.failf "missing form line(s) in output:\n%s" stdout

let test_check_flow_schedule_agree () =
  (* sound shipped script: both sections present, same (compiled) form *)
  let code, stdout, stderr =
    run_otd_check
      [
        script_file; "--schedule"; "--flow"; "--final";
        "{func.*, scf.*, arith.*, memref.*}";
      ]
  in
  check Alcotest.int "exit code" 0 code;
  check cb "flow verdict" true (contains stdout "OK: annotation flow is sound");
  check_forms_agree stdout;
  ignore stderr

let test_check_flow_schedule_agree_degraded () =
  (* a use-after-consume script degrades the schedule to interpreted form;
     both sections must say so, and the flow check must reject *)
  let bad = Filename.temp_file "otd_check_uac" ".mlir" in
  let oc = open_out bad in
  output_string oc
    {|"builtin.module"() ({
  "transform.named_sequence"() ({
  ^bb0(%root: !transform.any_op):
    %loop = "transform.match_op"(%root) {op_name = "scf.for", select = "first"} : (!transform.any_op) -> !transform.any_op
    %tiled:2 = "transform.loop_tile"(%loop) {tile_sizes = array<i64: 4>} : (!transform.any_op) -> (!transform.any_op, !transform.any_op)
    "transform.annotate"(%loop) {name = "late"} : (!transform.any_op) -> ()
    "transform.yield"() : () -> ()
  }) {sym_name = "__transform_main"} : () -> ()
}) : () -> ()
|};
  close_out oc;
  let code, stdout, _ = run_otd_check [ bad; "--schedule"; "--flow" ] in
  Sys.remove bad;
  check cb "nonzero exit" true (code <> 0);
  check cb "degraded form reported" true (contains stdout "interpreted");
  check_forms_agree stdout

let () =
  Alcotest.run "cli"
    [
      ( "otd-opt",
        [
          Alcotest.test_case "json-report" `Quick test_json_report;
          Alcotest.test_case "json-failure" `Quick test_json_failure_report;
          Alcotest.test_case "reproducer-roundtrip" `Quick
            test_reproducer_roundtrip;
          Alcotest.test_case "text-reports" `Quick test_text_reports_on_stderr;
        ] );
      ( "otd-check",
        [
          Alcotest.test_case "flow-schedule-agree" `Quick
            test_check_flow_schedule_agree;
          Alcotest.test_case "flow-schedule-agree-degraded" `Quick
            test_check_flow_schedule_agree_degraded;
        ] );
    ]
