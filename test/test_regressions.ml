(* Regression tests for the first bugs found by the otd-fuzz differential
   campaign. Each checked-in reproducer embeds the pipeline that exposed
   the bug (the pass manager's crash-reproducer header format) and must now
   sail through the differential oracle: execute, transform, verify,
   execute again, compare. *)

open Testutil

let reproducers =
  [
    (* convert-arith-to-llvm skipped select/maxsi/minsi/sitofp, stranding
       unrealized casts that reconcile-unrealized-casts then rejected *)
    "regressions/fuzz-seed42-arith-to-llvm-select.mlir";
    (* the interpreter had no execution support for llvm compute ops, so
       fully lowered modules could not run at all *)
    "regressions/fuzz-seed42-interp-llvm-compute.mlir";
    (* finalize-memref-to-llvm emitted a size-less llvm.alloca, losing the
       allocation size the interpreter and cache model need *)
    "regressions/fuzz-seed42-memref-alloca-size.mlir";
  ]

let pipeline_of src =
  let marker = "// configuration: --pass-pipeline=" in
  String.split_on_char '\n' src
  |> List.find_map (fun line ->
         let n = String.length marker in
         if String.length line >= n && String.sub line 0 n = marker then
           Some (String.sub line n (String.length line - n))
         else None)

let test_reproducer path () =
  let src = read_file path in
  let m = parse_file path in
  let pipeline =
    match pipeline_of src with
    | Some p -> p
    | None -> Alcotest.failf "%s: no embedded pipeline" path
  in
  match Fuzz.Oracle.differential ctx ~pipeline m with
  | Ok () -> ()
  | Error f -> Alcotest.failf "%a" Fuzz.Oracle.pp_failure f

(* the structural half of the alloca fix: the lowering must keep an explicit
   element-count operand on llvm.alloca (real MLIR's alloca has one too) *)
let test_alloca_has_size_operand () =
  let m = parse_file "regressions/fuzz-seed42-memref-alloca-size.mlir" in
  (match run_pipeline Workloads.Subview_kernel.naive_pipeline m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "lowering failed: %s" e);
  let allocas = Ir.Symbol.collect_ops ~op_name:"llvm.alloca" m in
  check cb "alloca present" true (allocas <> []);
  List.iter
    (fun a ->
      check cb "alloca carries a size operand" true
        (Ir.Ircore.operands a <> []))
    allocas

(* found by the flow-diff campaign (seed 7, case 106): canonicalizing
   through a select=all scf.for handle erased a single-trip loop, and the
   loop nested inside it survived State.prune as a detached corpse (its
   op_parent still pointed into the erased region). The next transform on
   the same handle then indexed operand 0 of the corpse and raised
   Invalid_argument. Both schedule forms must now run the script cleanly
   and keep only the genuinely live loop in the payload. *)
let test_stale_loop_handle () =
  let script () =
    parse_file "regressions/flowdiff-seed7-stale-loop-handle-script.mlir"
  in
  let payload () =
    parse_file "regressions/flowdiff-seed7-stale-loop-handle.mlir"
  in
  List.iter
    (fun mode ->
      let m = payload () in
      (match Transform.Schedule.run ~mode ctx ~script:(script ()) ~payload:m with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "stale-handle script failed: %s"
          (Transform.Terror.to_string e));
      (* the single-trip middle loop must be gone, and its spliced body
         (plus tiling) accounts for every remaining loop *)
      check cb "canonicalize erased the single-trip loop" true
        (count "scf.for" m >= 2))
    [ `Interpret; `Compile ]

let () =
  Alcotest.run "regressions"
    [
      ( "fuzz-found",
        List.map
          (fun path ->
            Alcotest.test_case (Filename.basename path) `Quick
              (test_reproducer path))
          reproducers
        @ [
            Alcotest.test_case "alloca-size-operand" `Quick
              test_alloca_has_size_operand;
            Alcotest.test_case "stale-loop-handle" `Quick
              test_stale_loop_handle;
          ] );
    ]
