(* Rewriter, patterns, greedy driver, CSE, canonicalize. *)

open Ir
open Dialects

let ctx = Transform.Register.full_context ()

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* simple function with arithmetic to rewrite *)
let arith_func body =
  let md = Builtin.create_module () in
  let f, entry =
    Func.create ~name:"f" ~arg_types:[ Typ.i32; Typ.i32 ]
      ~result_types:[ Typ.i32 ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let r = body rw (Ircore.block_arg entry 0) (Ircore.block_arg entry 1) in
  Func.return rw ~operands:[ r ] ();
  md

let count_ops name md = List.length (Symbol.collect_ops ~op_name:name md)

(* ------------------------------------------------------------------ *)
(* listeners                                                           *)
(* ------------------------------------------------------------------ *)

let test_listener_events () =
  let inserted = ref [] and replaced = ref [] and erased = ref [] in
  let modified = ref [] in
  let rw = Rewriter.create () in
  Rewriter.add_listener rw
    {
      Rewriter.on_inserted = (fun o -> inserted := o.Ircore.op_name :: !inserted);
      on_replaced = (fun o _ -> replaced := o.Ircore.op_name :: !replaced);
      on_erased = (fun o -> erased := o.Ircore.op_name :: !erased);
      on_modified = (fun o -> modified := o.Ircore.op_name :: !modified);
    };
  let b = Ircore.create_block () in
  Rewriter.set_ip rw (Builder.At_end b);
  let a = Rewriter.build rw ~result_types:[ Typ.i32 ] "t.a" in
  let a2 = Rewriter.build rw ~result_types:[ Typ.i32 ] "t.b" in
  Rewriter.modify_in_place rw a2 (fun () -> Ircore.set_attr a2 "tag" (Attr.Bool true));
  Rewriter.replace_op rw a ~with_:(Ircore.results a2);
  let dead = Rewriter.build rw "t.dead" in
  Rewriter.erase_op rw dead;
  check (Alcotest.list Alcotest.string) "inserted" [ "t.a"; "t.b"; "t.dead" ]
    (List.rev !inserted);
  check (Alcotest.list Alcotest.string) "replaced" [ "t.a" ] (List.rev !replaced);
  check (Alcotest.list Alcotest.string) "erased" [ "t.dead" ] (List.rev !erased);
  check (Alcotest.list Alcotest.string) "modified" [ "t.b" ] (List.rev !modified)

let test_nested_erase_notifies () =
  let erased = ref 0 in
  let rw = Rewriter.create () in
  Rewriter.add_listener rw
    { Rewriter.null_listener with Rewriter.on_erased = (fun _ -> incr erased) };
  let inner = Ircore.create_block () in
  Ircore.insert_at_end inner (Ircore.create "t.leaf");
  let region_op =
    Ircore.create ~regions:[ Ircore.region_with_block inner ] "t.region"
  in
  let b = Ircore.create_block () in
  Ircore.insert_at_end b region_op;
  Rewriter.erase_op rw region_op;
  check ci "both ops notified" 2 !erased

(* ------------------------------------------------------------------ *)
(* block surgery                                                       *)
(* ------------------------------------------------------------------ *)

let test_split_block () =
  let rw = Rewriter.create () in
  let b = Ircore.create_block () in
  let o1 = Ircore.create "t.o1" and o2 = Ircore.create "t.o2" in
  let o3 = Ircore.create "t.o3" in
  List.iter (Ircore.insert_at_end b) [ o1; o2; o3 ];
  let region = Ircore.region_with_block b in
  ignore region;
  let rest = Rewriter.split_block_before rw b o2 in
  check ci "b keeps 1" 1 (Ircore.block_num_ops b);
  check ci "rest has 2" 2 (Ircore.block_num_ops rest);
  check cb "o2 first in rest" true
    (match Ircore.block_first_op rest with Some o -> o == o2 | None -> false)

let test_inline_block_before () =
  let rw = Rewriter.create () in
  let src = Ircore.create_block ~args:[ Typ.i32 ] () in
  let user =
    Ircore.create ~operands:[ Ircore.block_arg src 0 ] "t.user"
  in
  Ircore.insert_at_end src user;
  let dst = Ircore.create_block () in
  let anchor = Ircore.create "t.anchor" in
  Ircore.insert_at_end dst anchor;
  let v = Ircore.create ~result_types:[ Typ.i32 ] "t.v" in
  Rewriter.inline_block_before rw ~anchor ~arg_values:[ Ircore.result v ] src;
  check ci "dst has 2 ops" 2 (Ircore.block_num_ops dst);
  check cb "arg replaced" true (Ircore.operand user == Ircore.result v)

(* ------------------------------------------------------------------ *)
(* greedy driver                                                       *)
(* ------------------------------------------------------------------ *)

let test_greedy_folds_constants () =
  let md =
    arith_func (fun rw _ _ ->
        let a = Dutil.const_int rw ~typ:Typ.i32 20 in
        let b = Dutil.const_int rw ~typ:Typ.i32 22 in
        Arith.addi rw a b)
  in
  ignore (Dutil.apply_greedy ctx ~patterns:[] md);
  check ci "addi folded away" 0 (count_ops "arith.addi" md);
  (* result must be a constant 42 *)
  let consts = Symbol.collect_ops ~op_name:"arith.constant" md in
  check cb "42 constant present" true
    (List.exists (fun c -> Ircore.attr c "value" = Some (Attr.Int (42, Typ.i32))) consts)

let test_greedy_dce () =
  let md =
    arith_func (fun rw x _ ->
        ignore (Arith.muli rw x x);
        (* dead *)
        x)
  in
  ignore (Dutil.apply_greedy ctx ~patterns:[] md);
  check ci "dead mul removed" 0 (count_ops "arith.muli" md)

let test_greedy_patterns_fixpoint () =
  let md =
    arith_func (fun rw x _ ->
        let zero = Dutil.const_int rw ~typ:Typ.i32 0 in
        let a = Arith.addi rw x zero in
        let b = Arith.addi rw a zero in
        Arith.addi rw b zero)
  in
  ignore
    (Dutil.apply_greedy ctx ~patterns:(Arith.canonicalization_patterns ()) md);
  check ci "all addi-zero chains gone" 0 (count_ops "arith.addi" md)

let test_greedy_respects_benefit () =
  (* two patterns on the same root; higher benefit must win *)
  let hits = ref [] in
  let p_low =
    Pattern.make ~benefit:1 ~root:"t.target" ~name:"low" (fun rw op ->
        hits := "low" :: !hits;
        Rewriter.replace_op rw op ~with_:[];
        true)
  in
  let p_high =
    Pattern.make ~benefit:10 ~root:"t.target" ~name:"high" (fun rw op ->
        hits := "high" :: !hits;
        Rewriter.replace_op rw op ~with_:[];
        true)
  in
  let b = Ircore.create_block () in
  Ircore.insert_at_end b (Ircore.create "t.target");
  let top = Ircore.create ~regions:[ Ircore.region_with_block b ] "t.top" in
  ignore
    (Greedy.apply ctx ~patterns:(Frozen_patterns.freeze [ p_low; p_high ]) top);
  check (Alcotest.list Alcotest.string) "high benefit first" [ "high" ] !hits

let test_greedy_converges_flag () =
  (* a pattern that always "rewrites" (infinite loop) must stop at
     max_iterations and report non-convergence *)
  let p =
    Pattern.make ~root:"t.spin" ~name:"spin" (fun rw op ->
        ignore
          (Rewriter.replace_op_with rw op ~operands:[] "t.spin");
        true)
  in
  let b = Ircore.create_block () in
  Ircore.insert_at_end b (Ircore.create "t.spin");
  let top = Ircore.create ~regions:[ Ircore.region_with_block b ] "t.top" in
  let converged =
    Greedy.apply
      ~config:{ Greedy.default_config with max_iterations = 3; fold = false; remove_dead = false }
      ctx ~patterns:(Frozen_patterns.freeze [ p ]) top
  in
  check cb "reports non-convergence" false converged

(* ------------------------------------------------------------------ *)
(* CSE + canonicalize passes                                           *)
(* ------------------------------------------------------------------ *)

let run_pass name md =
  match (Passes.Pass.lookup_exn name).Passes.Pass.run ctx md with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pass %s: %s" name (Diag.to_string e)

let test_cse_merges () =
  let md =
    arith_func (fun rw x y ->
        let a = Arith.addi rw x y in
        let b = Arith.addi rw x y in
        Arith.muli rw a b)
  in
  run_pass "cse" md;
  check ci "one addi left" 1 (count_ops "arith.addi" md)

let test_cse_respects_attrs () =
  let md =
    arith_func (fun rw x y ->
        let a = Arith.cmpi rw Arith.Slt x y in
        let b = Arith.cmpi rw Arith.Sgt x y in
        let s = Arith.select rw a x y in
        let t = Arith.select rw b x y in
        Arith.addi rw s t)
  in
  run_pass "cse" md;
  check ci "different predicates kept" 2 (count_ops "arith.cmpi" md)

let test_cse_skips_effects () =
  let md = Builtin.create_module () in
  let f, entry =
    Func.create ~name:"f"
      ~arg_types:[ Typ.memref (Typ.static_dims [ 4 ]) Typ.f32 ]
      ~result_types:[] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let m = Ircore.block_arg entry 0 in
  let i = Dutil.const_int rw 0 in
  let a = Memref.load rw m [ i ] in
  let b = Memref.load rw m [ i ] in
  let s = Arith.addf rw a b in
  Memref.store rw s m [ i ];
  Func.return rw ();
  run_pass "cse" md;
  check ci "loads not merged (effects)" 2 (count_ops "memref.load" md)

let test_cse_across_dominating_blocks () =
  (* a duplicate computation in a dominated block is merged with the one in
     the entry block; duplicates in sibling branches are NOT merged *)
  let src =
    {|"func.func"() ({
^bb0(%c: i1, %x: i32):
  %a = "arith.addi"(%x, %x) : (i32, i32) -> i32
  "cf.cond_br"(%c)[^bb1, ^bb2] : (i1) -> ()
^bb1:
  %b = "arith.addi"(%x, %x) : (i32, i32) -> i32
  %u = "arith.muli"(%x, %x) : (i32, i32) -> i32
  "test.use"(%b, %u) : (i32, i32) -> ()
  "cf.br"()[^bb3] : () -> ()
^bb2:
  %d = "arith.muli"(%x, %x) : (i32, i32) -> i32
  "test.use2"(%d) : (i32) -> ()
  "cf.br"()[^bb3] : () -> ()
^bb3:
  "func.return"() : () -> ()
}) {sym_name = "f", function_type = (i1, i32) -> ()} : () -> ()|}
  in
  let md =
    match Ir.Parser.parse_module src with
    | Ok m -> m
    | Error e -> Alcotest.failf "parse: %s" e
  in
  run_pass "cse" md;
  check ci "dominated addi merged" 1 (count_ops "arith.addi" md);
  check ci "sibling mulis kept apart" 2 (count_ops "arith.muli" md)

let test_canonicalize_pipeline () =
  let md =
    arith_func (fun rw x _ ->
        let one = Dutil.const_int rw ~typ:Typ.i32 1 in
        let zero = Dutil.const_int rw ~typ:Typ.i32 0 in
        let m = Arith.muli rw x one in
        Arith.addi rw m zero)
  in
  run_pass "canonicalize" md;
  check ci "no muli" 0 (count_ops "arith.muli" md);
  check ci "no addi" 0 (count_ops "arith.addi" md)

let () =
  Alcotest.run "rewriter"
    [
      ( "listeners",
        [
          Alcotest.test_case "events fire" `Quick test_listener_events;
          Alcotest.test_case "nested erase notifies" `Quick
            test_nested_erase_notifies;
        ] );
      ( "surgery",
        [
          Alcotest.test_case "split block" `Quick test_split_block;
          Alcotest.test_case "inline block" `Quick test_inline_block_before;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "constant folding" `Quick
            test_greedy_folds_constants;
          Alcotest.test_case "dead code elimination" `Quick test_greedy_dce;
          Alcotest.test_case "fixpoint over patterns" `Quick
            test_greedy_patterns_fixpoint;
          Alcotest.test_case "benefit ordering" `Quick
            test_greedy_respects_benefit;
          Alcotest.test_case "non-convergence detected" `Quick
            test_greedy_converges_flag;
        ] );
      ( "passes",
        [
          Alcotest.test_case "cse merges" `Quick test_cse_merges;
          Alcotest.test_case "cse respects attrs" `Quick test_cse_respects_attrs;
          Alcotest.test_case "cse skips effectful ops" `Quick
            test_cse_skips_effects;
          Alcotest.test_case "cse across dominating blocks" `Quick
            test_cse_across_dominating_blocks;
          Alcotest.test_case "canonicalize" `Quick test_canonicalize_pipeline;
        ] );
    ]
