(* Compiled transform schedules (Transform.Schedule): compiled-vs-interpreted
   parity on realistic scripts, degradation to interpretation on statically
   invalid scripts (error parity with the dynamic checker), the
   content-addressed cache keyed by Ir.Fingerprint, and the fingerprint's
   stability across textual roundtrips. *)

open Ir
open Testutil

let cs = Alcotest.string

let counter name =
  match Stats.find_counter ~component:"schedule" name with
  | Some c -> c
  | None -> Alcotest.failf "no schedule/%s counter" name

(* apply [script] to clones of [payload] through both modes; return the two
   outcomes and printed payloads *)
let both_modes script payload =
  let mi = Ircore.clone_op payload and mc = Ircore.clone_op payload in
  let ri = Transform.Schedule.run ~mode:`Interpret ctx ~script ~payload:mi in
  let rc = Transform.Schedule.run ~mode:`Compile ctx ~script ~payload:mc in
  ((ri, Printer.op_to_string mi), (rc, Printer.op_to_string mc))

let check_parity what script payload =
  let (ri, si), (rc, sc) = both_modes script payload in
  (match (ri, rc) with
  | Ok a, Ok b -> check ci (what ^ ": same steps") a b
  | Error a, Error b ->
    check cs
      (what ^ ": same error")
      (Transform.Terror.to_string a)
      (Transform.Terror.to_string b)
  | Ok _, Error e ->
    Alcotest.failf "%s: interpreted ok, compiled failed: %s" what
      (Transform.Terror.to_string e)
  | Error e, Ok _ ->
    Alcotest.failf "%s: compiled ok, interpreted failed: %s" what
      (Transform.Terror.to_string e));
  check cs (what ^ ": same payload IR") si sc

(* ---------------- parity on realistic scripts ---------------- *)

let test_parity_cs2_pipeline () =
  (* Case Study 2's lowering expressed as a transform script (the
     From_pipeline conversion): a chain of consuming pass applications *)
  let script =
    match
      Transform.From_pipeline.script_of_pipeline_str
        (String.concat "," Workloads.Subview_kernel.naive_pipeline)
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "pipeline conversion: %s" (Diag.to_string e)
  in
  check_parity "cs2" script
    (Workloads.Subview_kernel.build Workloads.Subview_kernel.Static_offset)

let test_parity_loop_script () =
  (* tile + unroll on the matmul workload, Case-Study-4 style *)
  let script =
    Transform.Build.script (fun rw root ->
        let loop =
          Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root
        in
        let outer, _inner = Transform.Build.loop_tile rw ~sizes:[ 4 ] loop in
        Transform.Build.loop_unroll rw ~factor:2 outer)
  in
  check_parity "tile+unroll" script (matmul ())

let test_parity_patterns () =
  (* apply_patterns: the compiled form pre-freezes the pattern set *)
  let script =
    Transform.Build.script (fun rw root ->
        Transform.Build.apply_patterns rw root
          (match Dialects.Shlo_patterns.names () with
          | a :: b :: c :: _ -> [ a; b; c ]
          | names -> names))
  in
  check_parity "patterns" script (matmul ())

let test_parity_include () =
  (* include is inlined at compile time; handle-yield binding must match
     the interpreter's *)
  let script =
    Transform.Build.script (fun rw root ->
        let inc =
          Transform.Build.include_ rw ~target:"helper" [ root ] ~results:1
        in
        Transform.Build.annotate rw ~name:"test.outer"
          (Ircore.result ~index:0 inc))
  in
  ignore
    (Transform.Build.named_sequence script ~name:"helper" ~num_args:1
       (fun rw args ->
         let loops =
           Transform.Build.match_op rw ~name:"scf.for" (List.hd args)
         in
         Transform.Build.annotate rw ~name:"test.inner" loops;
         [ loops ]));
  let s = Transform.Schedule.of_script ctx script in
  check cb "include script compiles" true (Transform.Schedule.is_compiled s);
  check cb "include body is inlined, not a fallback" true
    (Transform.Schedule.fallback_count s = 0);
  check_parity "include" script (matmul ())

let test_parity_silenceable_failure () =
  (* split_handle with the wrong arity fails silenceably; both modes must
     produce the identical error *)
  let script =
    Transform.Build.script (fun rw root ->
        let adds = Transform.Build.match_op rw ~name:"arith.addi" root in
        ignore (Transform.Build.split_handle rw ~n:7 adds))
  in
  check_parity "split-mismatch" script (matmul ())

(* ---------------- degradation and error parity ---------------- *)

let test_consumed_script_interprets () =
  (* the static checker flags reuse-after-consume; the schedule must refuse
     to compile and report exactly what the dynamic checker reports *)
  let script =
    Transform.Build.script (fun rw root ->
        let loop = Transform.Build.match_op rw ~name:"scf.for" root in
        ignore (Transform.Build.loop_tile rw ~sizes:[ 4 ] loop);
        (* loop was consumed by tile *)
        Transform.Build.loop_unroll rw ~factor:2 loop)
  in
  let s = Transform.Schedule.of_script ctx script in
  check cb "degrades to interpretation" false (Transform.Schedule.is_compiled s);
  check cb "static diagnostics surface" true
    (Transform.Schedule.static_diags s <> []);
  check_parity "use-after-consume" script (matmul ())

let test_fallback_constructs () =
  (* alternatives and nested suppress sequences execute as interpreter
     fallbacks inside an otherwise compiled schedule *)
  let script =
    Transform.Build.script (fun rw root ->
        let funcs = Transform.Build.match_op rw ~name:"func.func" root in
        Transform.Build.annotate rw ~name:"test.pre" funcs;
        Transform.Build.alternatives rw
          [
            (fun brw ->
              ignore
                (Transform.Build.apply_registered_pass brw
                   ~pass_name:"canonicalize" root));
          ])
  in
  let s = Transform.Schedule.of_script ctx script in
  check cb "compiles" true (Transform.Schedule.is_compiled s);
  check cb "has a fallback instr" true (Transform.Schedule.fallback_count s > 0);
  let fallbacks_before = Stats.value (counter "fallbacks") in
  (match Transform.Schedule.apply s ~payload:(matmul ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "apply: %s" (Transform.Terror.to_string e));
  check cb "fallback counter ticks" true
    (Stats.value (counter "fallbacks") > fallbacks_before);
  check_parity "alternatives" script (matmul ())

(* ---------------- cache ---------------- *)

let test_cache_hit_on_reapply () =
  Transform.Schedule.clear_cache ();
  let script =
    Transform.Build.script (fun rw root ->
        let funcs = Transform.Build.match_op rw ~name:"func.func" root in
        Transform.Build.annotate rw ~name:"test.cached" funcs)
  in
  let hits0 = Stats.value (counter "cache_hits") in
  let misses0 = Stats.value (counter "cache_misses") in
  (match Transform.Schedule.run ctx ~script ~payload:(matmul ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first apply: %s" (Transform.Terror.to_string e));
  check ci "first application misses" (misses0 + 1)
    (Stats.value (counter "cache_misses"));
  (match Transform.Schedule.run ctx ~script ~payload:(matmul ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "second apply: %s" (Transform.Terror.to_string e));
  check ci "second application hits" (hits0 + 1)
    (Stats.value (counter "cache_hits"));
  check ci "no second miss" (misses0 + 1) (Stats.value (counter "cache_misses"))

let test_cache_hits_across_reparse () =
  Transform.Schedule.clear_cache ();
  let script =
    Transform.Build.script (fun rw root ->
        let funcs = Transform.Build.match_op rw ~name:"func.func" root in
        Transform.Build.annotate rw ~name:"test.reparsed" funcs)
  in
  ignore (Transform.Schedule.of_script ctx script);
  let hits0 = Stats.value (counter "cache_hits") in
  (* a re-parsed copy is a different object with different ids but the same
     structure: the fingerprint must find the cached schedule *)
  let reparsed =
    match Parser.parse_module (Printer.op_to_string script) with
    | Ok m -> m
    | Error e -> Alcotest.failf "reparse: %s" e
  in
  ignore (Transform.Schedule.of_script ctx reparsed);
  check ci "reparsed script hits the cache" (hits0 + 1)
    (Stats.value (counter "cache_hits"))

(* ---------------- fingerprint ---------------- *)

let test_fingerprint_roundtrip_stable () =
  let stable what m =
    let fp1 = Fingerprint.op m in
    let m2 =
      match Parser.parse_module (Printer.op_to_string m) with
      | Ok m2 -> m2
      | Error e -> Alcotest.failf "%s: reparse: %s" what e
    in
    check cs
      (what ^ ": fingerprint survives parse->print->parse")
      (Fingerprint.to_hex fp1)
      (Fingerprint.to_hex (Fingerprint.op m2))
  in
  let script_asset =
    (* locate the shipped script relative to the dune workspace root *)
    let rec find dir =
      let candidate =
        Filename.concat dir "examples/scripts/tile_and_unroll.mlir"
      in
      if Sys.file_exists candidate then candidate
      else
        let parent = Filename.dirname dir in
        if parent = dir then Alcotest.fail "tile_and_unroll.mlir not found"
        else find parent
    in
    find (Sys.getcwd ())
  in
  stable "script" (parse_file script_asset);
  stable "payload" (matmul ())

let test_fingerprint_discriminates () =
  let s1 =
    Transform.Build.script (fun rw root ->
        Transform.Build.annotate rw ~name:"a" root)
  in
  let s2 =
    Transform.Build.script (fun rw root ->
        Transform.Build.annotate rw ~name:"b" root)
  in
  check cb "different scripts, different fingerprints" false
    (Fingerprint.equal (Fingerprint.op s1) (Fingerprint.op s2))

let () =
  Alcotest.run "schedule"
    [
      ( "parity",
        [
          Alcotest.test_case "cs2-pipeline" `Quick test_parity_cs2_pipeline;
          Alcotest.test_case "tile-unroll" `Quick test_parity_loop_script;
          Alcotest.test_case "apply-patterns" `Quick test_parity_patterns;
          Alcotest.test_case "include-inlined" `Quick test_parity_include;
          Alcotest.test_case "silenceable-failure" `Quick
            test_parity_silenceable_failure;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "use-after-consume" `Quick
            test_consumed_script_interprets;
          Alcotest.test_case "fallback-constructs" `Quick
            test_fallback_constructs;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit-on-reapply" `Quick test_cache_hit_on_reapply;
          Alcotest.test_case "hit-across-reparse" `Quick
            test_cache_hits_across_reparse;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "roundtrip-stable" `Quick
            test_fingerprint_roundtrip_stable;
          Alcotest.test_case "discriminates" `Quick
            test_fingerprint_discriminates;
        ] );
    ]
