(* Transform-IR-level processing: inlining, no-op folding, DCE,
   introspection (Section 3.4). *)

open Ir
module T = Transform

let ctx = T.Register.full_context ()
let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let count name md = List.length (Symbol.collect_ops ~op_name:name md)

let test_inline_include () =
  let script =
    T.Build.script (fun rw root ->
        let inc = T.Build.include_ rw ~target:"helper" [ root ] ~results:1 in
        T.Build.print rw (Ircore.result inc))
  in
  ignore
    (T.Build.named_sequence script ~name:"helper" ~num_args:1 (fun rw args ->
         [ T.Build.match_op rw ~select:"first" ~name:"scf.for" (List.hd args) ]));
  (match T.Simplify.inline_includes script with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check ci "no includes left" 0 (count "transform.include" script);
  (* the match op was spliced into the main sequence *)
  let main =
    List.find
      (fun o -> Symbol.symbol_name o = Some "__transform_main")
      (Symbol.collect_ops ~op_name:"transform.named_sequence" script)
  in
  check ci "match inlined into main" 1 (count "transform.match_op" main)

let test_inline_nested_includes () =
  let script =
    T.Build.script (fun rw root ->
        ignore (T.Build.include_ rw ~target:"outer_helper" [ root ] ~results:0))
  in
  ignore
    (T.Build.named_sequence script ~name:"outer_helper" ~num_args:1
       (fun rw args ->
         ignore (T.Build.include_ rw ~target:"inner_helper" args ~results:0);
         []));
  ignore
    (T.Build.named_sequence script ~name:"inner_helper" ~num_args:1
       (fun rw args ->
         ignore (T.Build.loop_hoist rw (List.hd args));
         []));
  (match T.Simplify.inline_includes script with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check ci "no includes" 0 (count "transform.include" script)

let test_inline_detects_recursion () =
  let script =
    T.Build.script (fun rw root ->
        ignore (T.Build.include_ rw ~target:"rec" [ root ] ~results:0))
  in
  ignore
    (T.Build.named_sequence script ~name:"rec" ~num_args:1 (fun rw args ->
         ignore (T.Build.include_ rw ~target:"rec" args ~results:0);
         []));
  match T.Simplify.inline_includes script with
  | Ok () -> Alcotest.fail "expected recursion error"
  | Error e -> check cb "mentions cycle" true (String.length e > 0)

let test_fold_noop_unroll () =
  let script =
    T.Build.script (fun rw root ->
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        T.Build.loop_unroll rw ~factor:1 loop)
  in
  let folded = T.Simplify.fold_noops script in
  check ci "one folded" 1 folded;
  check ci "unroll removed" 0 (count "transform.loop_unroll" script)

let test_fold_noop_tile_forwards_handles () =
  let script =
    T.Build.script (fun rw root ->
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        let _t, p = T.Build.loop_tile rw ~sizes:[ 0; 0 ] loop in
        T.Build.loop_unroll_full rw p)
  in
  let folded = T.Simplify.fold_noops script in
  check ci "tile folded" 1 folded;
  check ci "tile removed" 0 (count "transform.loop_tile" script);
  (* the unroll must now use the match result directly *)
  let unroll = List.hd (Symbol.collect_ops ~op_name:"transform.loop_unroll" script) in
  let matched = List.hd (Symbol.collect_ops ~op_name:"transform.match_op" script) in
  check cb "forwarded" true
    (Ircore.operand unroll == Ircore.result matched)

let test_dce_unused_matches () =
  let script =
    T.Build.script (fun rw root ->
        ignore (T.Build.match_op rw ~name:"scf.for" root);
        ignore (T.Build.param_constant rw 5);
        let used = T.Build.match_op rw ~select:"first" ~name:"func.func" root in
        T.Build.print rw used)
  in
  let removed = T.Simplify.dce script in
  check ci "two removed" 2 removed;
  check ci "used match kept" 1 (count "transform.match_op" script)

let test_run_combined_then_execute () =
  (* simplified script must still work on a payload *)
  let md = Workloads.Matmul.build_module ~m:8 ~n:8 ~k:4 () in
  let script =
    T.Build.script (fun rw root ->
        let inc = T.Build.include_ rw ~target:"find" [ root ] ~results:1 in
        let loop = Ircore.result inc in
        let _t, p = T.Build.loop_tile rw ~sizes:[ 0; 0 ] loop in
        T.Build.loop_unroll rw ~factor:1 p;
        ignore (T.Build.loop_tile rw ~sizes:[ 4; 4 ] p))
  in
  ignore
    (T.Build.named_sequence script ~name:"find" ~num_args:1 (fun rw args ->
         [ T.Build.match_op rw ~select:"first" ~name:"scf.for" (List.hd args) ]));
  (match T.Simplify.run script with
  | Ok (folded, _) -> check cb "folded some" true (folded >= 2)
  | Error e -> Alcotest.fail e);
  (match T.Schedule.run ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (T.Terror.to_string e));
  check ci "tiled" 5 (count "scf.for" md)

let test_simplified_equals_unsimplified () =
  (* same payload transformations with and without simplification *)
  let build_script () =
    let script =
      T.Build.script (fun rw root ->
          let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
          let _t, p = T.Build.loop_tile rw ~sizes:[ 0; 0 ] loop in
          ignore (T.Build.loop_tile rw ~sizes:[ 4; 4 ] p))
    in
    script
  in
  let md1 = Workloads.Matmul.build_module ~m:8 ~n:8 ~k:4 () in
  let md2 = Workloads.Matmul.build_module ~m:8 ~n:8 ~k:4 () in
  ignore (T.Schedule.run ctx ~script:(build_script ()) ~payload:md1);
  let s2 = build_script () in
  (match T.Simplify.run s2 with Ok _ -> () | Error e -> Alcotest.fail e);
  ignore (T.Schedule.run ctx ~script:s2 ~payload:md2);
  check Alcotest.string "same transformed IR"
    (Printer.op_to_string md1) (Printer.op_to_string md2)

(* ------------------------------------------------------------------ *)
(* introspection (Section 3.4)                                         *)
(* ------------------------------------------------------------------ *)

let test_infer_add_kinds_by_position () =
  Experiments.S34.register_shlo_to_arith ();
  let rows = Experiments.S34.run ctx in
  let kinds = List.map (fun r -> r.Experiments.S34.inferred_add) rows in
  check (Alcotest.list Alcotest.string) "inferred per level"
    [ "shlo.add"; "arith.addf"; "llvm.fadd" ] kinds

let test_explicit_add_kind_respected () =
  let script =
    T.Build.script (fun rw root ->
        let f = T.Build.match_op rw ~name:"func.func" root in
        ignore
          (Rewriter.build rw ~operands:[ f ]
             ~attrs:[ ("add_op", Attr.str "tosa.add") ]
             T.Ops.enzyme_ad_op))
  in
  let kinds = T.Introspect.infer_add_kinds script in
  check (Alcotest.list Alcotest.string) "explicit kept" [ "tosa.add" ] kinds

let () =
  Alcotest.run "simplify"
    [
      ( "inline",
        [
          Alcotest.test_case "include expansion" `Quick test_inline_include;
          Alcotest.test_case "nested includes" `Quick
            test_inline_nested_includes;
          Alcotest.test_case "recursion rejected" `Quick
            test_inline_detects_recursion;
        ] );
      ( "fold",
        [
          Alcotest.test_case "unroll by 1" `Quick test_fold_noop_unroll;
          Alcotest.test_case "tile by 0 forwards" `Quick
            test_fold_noop_tile_forwards_handles;
          Alcotest.test_case "dce unused" `Quick test_dce_unused_matches;
          Alcotest.test_case "combined + execute" `Quick
            test_run_combined_then_execute;
          Alcotest.test_case "simplified == unsimplified" `Quick
            test_simplified_equals_unsimplified;
        ] );
      ( "introspect",
        [
          Alcotest.test_case "infer add kinds (Fig 5)" `Quick
            test_infer_add_kinds_by_position;
          Alcotest.test_case "explicit kind respected" `Quick
            test_explicit_add_kind_respected;
        ] );
    ]
