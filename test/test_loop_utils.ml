(* Loop transformations: semantic preservation (checked by execution) and
   pre-condition failures. *)

open Ir
open Dialects

let ctx = Transform.Register.full_context ()
let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* a kernel with one output cell per i, exercised over a single loop:
   out[i] = i * 3 + 1 *)
let build_1d_kernel n =
  let md = Builtin.create_module () in
  let mt = Typ.memref (Typ.static_dims [ n ]) Typ.f32 in
  let f, entry = Func.create ~name:"k" ~arg_types:[ mt ] ~result_types:[] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let out = Ircore.block_arg entry 0 in
  let rw = Dutil.rw_at_end entry in
  let zero = Dutil.const_int rw 0 in
  let one = Dutil.const_int rw 1 in
  let ub = Dutil.const_int rw n in
  ignore
    (Scf.build_for rw ~lb:zero ~ub ~step:one (fun brw i _ ->
         let fi = Arith.index_cast brw i Typ.i64 in
         let ff =
           Rewriter.build1 brw ~operands:[ fi ] ~result_types:[ Typ.f32 ]
             "arith.sitofp"
         in
         let c3 = Dutil.const_float brw 3.0 in
         let c1 = Dutil.const_float brw 1.0 in
         let v = Arith.addf brw (Arith.mulf brw ff c3) c1 in
         Memref.store brw v out [ i ];
         []));
  Func.return rw ();
  md

let run_1d n md =
  let machine = Interp.Machine.create () in
  let out = Workloads.Matmul.make_matrix machine ~rows:1 ~cols:n ~seed:0 in
  let view = { out with Interp.Rvalue.sizes = [| n |]; strides = [| 1 |] } in
  match
    Interp.Compile.run_function ~machine ~ir_ctx:ctx ~module_:md ~name:"k"
      [ Interp.Rvalue.Memref view ]
  with
  | Ok (_, _) -> view.Interp.Rvalue.buf.Interp.Rvalue.data
  | Error e -> Alcotest.failf "run: %s" e

let expected_1d n = Array.init n (fun i -> (float_of_int i *. 3.0) +. 1.0)

let first_loop md = List.hd (Symbol.collect_ops ~op_name:"scf.for" md)

let check_1d ?(n = 23) transform =
  let md = build_1d_kernel n in
  let rw = Rewriter.create () in
  (match transform rw (first_loop md) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "transform failed: %s" e);
  (match Verifier.verify ctx md with
  | Ok () -> ()
  | Error ds ->
    Alcotest.failf "verify: %a"
      (Fmt.list ~sep:Fmt.comma Diag.pp)
      ds);
  let got = run_1d n md in
  check cb "results preserved" true (got = expected_1d n);
  md

(* ------------------------------------------------------------------ *)
(* split                                                               *)
(* ------------------------------------------------------------------ *)

let test_split_semantics () =
  let md = check_1d (fun rw l -> Passes.Loop_utils.split rw l ~divisor:8) in
  check ci "two loops now" 2 (List.length (Symbol.collect_ops ~op_name:"scf.for" md))

let test_split_bounds () =
  let md = build_1d_kernel 23 in
  let rw = Rewriter.create () in
  (match Passes.Loop_utils.split rw (first_loop md) ~divisor:8 with
  | Ok (main, rest) ->
    check cb "main trip 16" true (Scf.static_trip_count main = Some 16);
    check cb "rest trip 7" true (Scf.static_trip_count rest = Some 7)
  | Error e -> Alcotest.fail e)

let test_split_divisor_larger_than_trip () =
  let md = build_1d_kernel 5 in
  let rw = Rewriter.create () in
  match Passes.Loop_utils.split rw (first_loop md) ~divisor:8 with
  | Ok (main, rest) ->
    check cb "main empty" true (Scf.static_trip_count main = Some 0);
    check cb "rest full" true (Scf.static_trip_count rest = Some 5);
    check cb "still correct" true (run_1d 5 md = expected_1d 5)
  | Error e -> Alcotest.fail e

let test_split_rejects_bad_divisor () =
  let md = build_1d_kernel 8 in
  let rw = Rewriter.create () in
  match Passes.Loop_utils.split rw (first_loop md) ~divisor:0 with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* unroll                                                              *)
(* ------------------------------------------------------------------ *)

let test_unroll_full () =
  let md = check_1d ~n:6 (fun rw l -> Passes.Loop_utils.unroll_full rw l) in
  check ci "loop gone" 0 (List.length (Symbol.collect_ops ~op_name:"scf.for" md));
  check ci "six stores" 6
    (List.length (Symbol.collect_ops ~op_name:"memref.store" md))

let test_unroll_by_factor () =
  let md = check_1d ~n:24 (fun rw l -> Passes.Loop_utils.unroll_by rw l ~factor:4) in
  let l = first_loop md in
  check cb "step is 4" true
    (Arith.constant_int_of_value (Scf.step l) = Some 4);
  check ci "four stores in body" 4
    (List.length (Symbol.collect_ops ~op_name:"memref.store" l))

let test_unroll_by_indivisible_fails () =
  let md = build_1d_kernel 23 in
  let rw = Rewriter.create () in
  match Passes.Loop_utils.unroll_by rw (first_loop md) ~factor:4 with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ ->
    (* payload untouched by the failed transform *)
    check cb "still correct" true (run_1d 23 md = expected_1d 23)

let test_unroll_full_with_iter_args () =
  (* sum 0..9 via iter_args, then fully unroll *)
  let md = Builtin.create_module () in
  let f, entry = Func.create ~name:"k" ~arg_types:[] ~result_types:[ Typ.f32 ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let zero = Dutil.const_int rw 0 in
  let one = Dutil.const_int rw 1 in
  let ub = Dutil.const_int rw 10 in
  let init = Dutil.const_float rw 0.0 in
  let loop =
    Scf.build_for rw ~lb:zero ~ub ~step:one ~iter_args:[ init ]
      (fun brw iv iters ->
        let fi = Arith.index_cast brw iv Typ.i64 in
        let ff =
          Rewriter.build1 brw ~operands:[ fi ] ~result_types:[ Typ.f32 ]
            "arith.sitofp"
        in
        [ Arith.addf brw (List.hd iters) ff ])
  in
  Func.return rw ~operands:[ Ircore.result loop ] ();
  let rw2 = Rewriter.create () in
  (match Passes.Loop_utils.unroll_full rw2 (first_loop md) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Interp.Compile.run_function ~ir_ctx:ctx ~module_:md ~name:"k" [] with
  | Ok ([ Interp.Rvalue.Float v ], _) ->
    check (Alcotest.float 1e-6) "sum 0..9" 45.0 v
  | Ok _ -> Alcotest.fail "unexpected results"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* tile / interchange                                                  *)
(* ------------------------------------------------------------------ *)

let test_tile_1d_divisible () =
  let md = check_1d ~n:24 (fun rw l -> Passes.Loop_utils.tile rw l ~sizes:[ 8 ]) in
  check ci "two loops (tile+point)" 2
    (List.length (Symbol.collect_ops ~op_name:"scf.for" md));
  check ci "no min needed (divisible)" 0
    (List.length (Symbol.collect_ops ~op_name:"arith.minsi" md))

let test_tile_1d_remainder () =
  let md = check_1d ~n:23 (fun rw l -> Passes.Loop_utils.tile rw l ~sizes:[ 8 ]) in
  check ci "min guard emitted" 1
    (List.length (Symbol.collect_ops ~op_name:"arith.minsi" md))

let test_tile_returns_loops () =
  let md = Workloads.Matmul.build_module ~m:16 ~n:16 ~k:8 () in
  let rw = Rewriter.create () in
  match Passes.Loop_utils.tile rw (first_loop md) ~sizes:[ 4; 4 ] with
  | Ok (tiles, points) ->
    check ci "two tile loops" 2 (List.length tiles);
    check ci "two point loops" 2 (List.length points);
    check cb "nesting" true
      (Ircore.is_ancestor ~ancestor:(List.hd tiles) (List.hd points))
  | Error e -> Alcotest.fail e

let test_tile_too_deep_fails () =
  let md = build_1d_kernel 8 in
  let rw = Rewriter.create () in
  match Passes.Loop_utils.tile rw (first_loop md) ~sizes:[ 4; 4 ] with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ()

let test_interchange_semantics () =
  let m, n, k = (8, 8, 4) in
  let md = Workloads.Matmul.build_module ~m ~n ~k () in
  let rw = Rewriter.create () in
  (match Passes.Loop_utils.interchange rw (first_loop md) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
  | Error e -> Alcotest.fail e
  | Ok (a, b, c_init, c_out, _) ->
    let expected = Workloads.Matmul.reference ~m ~n ~k a b c_init in
    check cb "interchange preserves results" true
      (Workloads.Matmul.max_abs_diff expected c_out < 1e-4)

(* ------------------------------------------------------------------ *)
(* hoist                                                               *)
(* ------------------------------------------------------------------ *)

let test_hoist_invariants () =
  let md = check_1d (fun rw l -> Passes.Loop_utils.hoist_invariants ctx rw l) in
  let l = first_loop md in
  check ci "constants hoisted" 0
    (List.length (Symbol.collect_ops ~op_name:"arith.constant" l))

let test_hoist_keeps_dependent_ops () =
  let md = build_1d_kernel 8 in
  let rw = Rewriter.create () in
  let l = first_loop md in
  (match Passes.Loop_utils.hoist_invariants ctx rw l with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check cb "store still inside" true
    (Symbol.collect_ops ~op_name:"memref.store" l <> [])

(* ------------------------------------------------------------------ *)
(* vectorize                                                           *)
(* ------------------------------------------------------------------ *)

(* elementwise kernel vectorizable by the restricted vectorizer:
   out[i] = out[i] * 3 + 1 *)
let build_1d_elementwise n =
  let md = Builtin.create_module () in
  let mt = Typ.memref (Typ.static_dims [ n ]) Typ.f32 in
  let f, entry = Func.create ~name:"k" ~arg_types:[ mt ] ~result_types:[] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let out = Ircore.block_arg entry 0 in
  let rw = Dutil.rw_at_end entry in
  let zero = Dutil.const_int rw 0 in
  let one = Dutil.const_int rw 1 in
  let ub = Dutil.const_int rw n in
  let c3 = Dutil.const_float rw 3.0 in
  let c1 = Dutil.const_float rw 1.0 in
  ignore
    (Scf.build_for rw ~lb:zero ~ub ~step:one (fun brw i _ ->
         let v = Memref.load brw out [ i ] in
         let v' = Arith.addf brw (Arith.mulf brw v c3) c1 in
         Memref.store brw v' out [ i ];
         []));
  Func.return rw ();
  md

let test_vectorize_semantics () =
  let n = 24 in
  let md = build_1d_elementwise n in
  let machine0 = Interp.Machine.create () in
  let mk () =
    let v = Workloads.Matmul.make_matrix machine0 ~rows:1 ~cols:n ~seed:5 in
    { v with Interp.Rvalue.sizes = [| n |]; strides = [| 1 |] }
  in
  let reference = mk () in
  let expected =
    Array.map
      (fun x -> (x *. 3.0) +. 1.0)
      reference.Interp.Rvalue.buf.Interp.Rvalue.data
  in
  let rw = Rewriter.create () in
  (match Passes.Loop_utils.vectorize rw (first_loop md) ~width:8 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "vectorize: %s" e);
  Verifier.verify_or_fail ctx md;
  check cb "vector stores present" true
    (Symbol.collect_ops ~op_name:"vector.store" md <> []);
  let out = mk () in
  (match
     Interp.Compile.run_function ~ir_ctx:ctx ~module_:md ~name:"k"
       [ Interp.Rvalue.Memref out ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check cb "vectorized results match" true
    (Workloads.Matmul.max_abs_diff expected
       out.Interp.Rvalue.buf.Interp.Rvalue.data
    < 1e-5)

let test_vectorize_rejects_iv_arith () =
  (* the 1d kernel computes with the induction variable: rejected *)
  let md = build_1d_kernel 24 in
  let rw = Rewriter.create () in
  match Passes.Loop_utils.vectorize rw (first_loop md) ~width:8 with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> check cb "payload intact" true (run_1d 24 md = expected_1d 24)

let test_vectorize_indivisible_fails () =
  let md = build_1d_elementwise 23 in
  let rw = Rewriter.create () in
  match Passes.Loop_utils.vectorize rw (first_loop md) ~width:8 with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ()

let test_vectorize_matmul_inner () =
  let m, n, k = (8, 16, 4) in
  let md = Workloads.Matmul.build_module ~order:Workloads.Matmul.Ikj ~m ~n ~k () in
  let rw = Rewriter.create () in
  let loops = Symbol.collect_ops ~op_name:"scf.for" md in
  let inner = List.nth loops 2 in
  (match Passes.Loop_utils.vectorize rw inner ~width:8 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
  | Error e -> Alcotest.fail e
  | Ok (a, b, c_init, c_out, _) ->
    let expected = Workloads.Matmul.reference ~m ~n ~k a b c_init in
    check cb "vectorized matmul correct" true
      (Workloads.Matmul.max_abs_diff expected c_out < 1e-4)

(* ------------------------------------------------------------------ *)
(* peel / fuse                                                         *)
(* ------------------------------------------------------------------ *)

let test_peel_front () =
  let md = build_1d_kernel 23 in
  let rw = Rewriter.create () in
  (match Passes.Loop_utils.peel_front rw (first_loop md) ~iterations:3 with
  | Ok (peeled, rest) ->
    check cb "peeled trip 3" true (Scf.static_trip_count peeled = Some 3);
    check cb "rest trip 20" true (Scf.static_trip_count rest = Some 20)
  | Error e -> Alcotest.fail e);
  check cb "semantics preserved" true (run_1d 23 md = expected_1d 23)

let test_peel_more_than_trip () =
  let md = build_1d_kernel 5 in
  let rw = Rewriter.create () in
  match Passes.Loop_utils.peel_front rw (first_loop md) ~iterations:100 with
  | Ok (peeled, rest) ->
    check cb "peeled covers all" true (Scf.static_trip_count peeled = Some 5);
    check cb "rest empty" true (Scf.static_trip_count rest = Some 0);
    check cb "still correct" true (run_1d 5 md = expected_1d 5)
  | Error e -> Alcotest.fail e

(* two independent loops over the same range, writing disjoint halves *)
let build_fusable n =
  let md = Builtin.create_module () in
  let mt = Typ.memref (Typ.static_dims [ 2 * n ]) Typ.f32 in
  let f, entry = Func.create ~name:"k" ~arg_types:[ mt ] ~result_types:[] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let out = Ircore.block_arg entry 0 in
  let rw = Dutil.rw_at_end entry in
  let zero = Dutil.const_int rw 0 in
  let one = Dutil.const_int rw 1 in
  let ub = Dutil.const_int rw n in
  let cn = Dutil.const_int rw n in
  let v1 = Dutil.const_float rw 1.5 in
  let v2 = Dutil.const_float rw 2.5 in
  ignore
    (Scf.build_for rw ~lb:zero ~ub ~step:one (fun brw i _ ->
         Memref.store brw v1 out [ i ];
         []));
  ignore
    (Scf.build_for rw ~lb:zero ~ub ~step:one (fun brw i _ ->
         let j = Arith.addi brw i cn in
         Memref.store brw v2 out [ j ];
         []));
  Func.return rw ();
  md

let run_fused n md =
  let machine = Interp.Machine.create () in
  let out = Workloads.Matmul.make_matrix machine ~rows:1 ~cols:(2 * n) ~seed:0 in
  let view = { out with Interp.Rvalue.sizes = [| 2 * n |]; strides = [| 1 |] } in
  match
    Interp.Compile.run_function ~machine ~ir_ctx:ctx ~module_:md ~name:"k"
      [ Interp.Rvalue.Memref view ]
  with
  | Ok _ -> view.Interp.Rvalue.buf.Interp.Rvalue.data
  | Error e -> Alcotest.failf "run: %s" e

let test_fuse_siblings () =
  let n = 8 in
  let md = build_fusable n in
  let loops = Symbol.collect_ops ~op_name:"scf.for" md in
  let rw = Rewriter.create () in
  (match
     Passes.Loop_utils.fuse_siblings rw (List.nth loops 0) (List.nth loops 1)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Verifier.verify_or_fail ctx md;
  check ci "one loop remains" 1
    (List.length (Symbol.collect_ops ~op_name:"scf.for" md));
  let data = run_fused n md in
  check cb "both halves written" true
    (Array.for_all (fun x -> x = 1.5) (Array.sub data 0 n)
    && Array.for_all (fun x -> x = 2.5) (Array.sub data n n))

let test_fuse_rejects_different_bounds () =
  let md = build_fusable 8 in
  let loops = Symbol.collect_ops ~op_name:"scf.for" md in
  let rw = Rewriter.create () in
  (* change the second loop's ub *)
  let b = List.nth loops 1 in
  Rewriter.set_ip rw (Builder.Before b);
  Ircore.set_operand b 1 (Dutil.const_int rw 4);
  match Passes.Loop_utils.fuse_siblings rw (List.nth loops 0) b with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ()

let test_fuse_transform_op () =
  let md = build_fusable 8 in
  let script =
    Transform.Build.script (fun rw root ->
        let l1 = Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        let l2 = Transform.Build.match_op rw ~select:"second" ~name:"scf.for" root in
        ignore (Transform.Build.loop_fuse rw l1 l2))
  in
  (match Transform.Schedule.run ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Transform.Terror.to_string e));
  check ci "fused via transform" 1
    (List.length (Symbol.collect_ops ~op_name:"scf.for" md))

let test_peel_transform_op () =
  let md = build_1d_kernel 23 in
  let script =
    Transform.Build.script (fun rw root ->
        let l = Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        let peeled, _rest = Transform.Build.loop_peel rw ~iterations:3 l in
        Transform.Build.loop_unroll_full rw peeled)
  in
  (match Transform.Schedule.run ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Transform.Terror.to_string e));
  check cb "correct after peel+unroll" true (run_1d 23 md = expected_1d 23)

(* ------------------------------------------------------------------ *)
(* matmul matcher / library call                                       *)
(* ------------------------------------------------------------------ *)

let test_match_matmul_positive () =
  let md = Workloads.Matmul.build_module ~m:8 ~n:8 ~k:4 () in
  match Passes.Loop_utils.match_matmul (first_loop md) with
  | Ok mm ->
    check ci "m" 8 mm.Passes.Loop_utils.mm_m;
    check ci "n" 8 mm.Passes.Loop_utils.mm_n;
    check ci "k" 4 mm.Passes.Loop_utils.mm_k_size
  | Error e -> Alcotest.fail e

let test_match_matmul_rejects_1d () =
  let md = build_1d_kernel 8 in
  match Passes.Loop_utils.match_matmul (first_loop md) with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ()

let test_library_call_unsupported_size () =
  (* n not divisible by 4: the libxsmm model refuses *)
  let md = Workloads.Matmul.build_module ~m:8 ~n:7 ~k:4 () in
  let rw = Rewriter.create () in
  match
    Passes.Loop_utils.replace_with_library_call rw ctx (first_loop md)
      ~library:"libxsmm"
  with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ ->
    check ci "payload unchanged" 3
      (List.length (Symbol.collect_ops ~op_name:"scf.for" md))

let test_library_call_unknown_library () =
  let md = Workloads.Matmul.build_module ~m:8 ~n:8 ~k:4 () in
  let rw = Rewriter.create () in
  match
    Passes.Loop_utils.replace_with_library_call rw ctx (first_loop md)
      ~library:"mkl"
  with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ()

(* property: tiling with random sizes preserves matmul semantics *)
let prop_tile_preserves_matmul =
  QCheck.Test.make ~count:20 ~name:"random tiling preserves matmul"
    QCheck.(pair (int_range 1 10) (int_range 1 10))
    (fun (ti, tj) ->
      let m, n, k = (12, 8, 4) in
      let md = Workloads.Matmul.build_module ~m ~n ~k () in
      let rw = Rewriter.create () in
      match Passes.Loop_utils.tile rw (first_loop md) ~sizes:[ ti; tj ] with
      | Error _ -> true
      | Ok _ -> (
        match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
        | Error _ -> false
        | Ok (a, b, c_init, c_out, _) ->
          let expected = Workloads.Matmul.reference ~m ~n ~k a b c_init in
          Workloads.Matmul.max_abs_diff expected c_out < 1e-4))

let () =
  Alcotest.run "loop-utils"
    [
      ( "split",
        [
          Alcotest.test_case "semantics" `Quick test_split_semantics;
          Alcotest.test_case "bounds" `Quick test_split_bounds;
          Alcotest.test_case "divisor > trip count" `Quick
            test_split_divisor_larger_than_trip;
          Alcotest.test_case "bad divisor rejected" `Quick
            test_split_rejects_bad_divisor;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "full" `Quick test_unroll_full;
          Alcotest.test_case "by factor" `Quick test_unroll_by_factor;
          Alcotest.test_case "indivisible fails cleanly" `Quick
            test_unroll_by_indivisible_fails;
          Alcotest.test_case "full with iter_args" `Quick
            test_unroll_full_with_iter_args;
        ] );
      ( "tile",
        [
          Alcotest.test_case "1d divisible" `Quick test_tile_1d_divisible;
          Alcotest.test_case "1d remainder (min guard)" `Quick
            test_tile_1d_remainder;
          Alcotest.test_case "returns tile/point loops" `Quick
            test_tile_returns_loops;
          Alcotest.test_case "too deep fails" `Quick test_tile_too_deep_fails;
          Alcotest.test_case "interchange semantics" `Quick
            test_interchange_semantics;
          QCheck_alcotest.to_alcotest prop_tile_preserves_matmul;
        ] );
      ( "hoist",
        [
          Alcotest.test_case "hoists invariants" `Quick test_hoist_invariants;
          Alcotest.test_case "keeps dependent ops" `Quick
            test_hoist_keeps_dependent_ops;
        ] );
      ( "vectorize",
        [
          Alcotest.test_case "semantics" `Quick test_vectorize_semantics;
          Alcotest.test_case "rejects iv arithmetic" `Quick
            test_vectorize_rejects_iv_arith;
          Alcotest.test_case "indivisible fails" `Quick
            test_vectorize_indivisible_fails;
          Alcotest.test_case "matmul inner loop" `Quick
            test_vectorize_matmul_inner;
        ] );
      ( "peel+fuse",
        [
          Alcotest.test_case "peel front" `Quick test_peel_front;
          Alcotest.test_case "peel more than trip" `Quick
            test_peel_more_than_trip;
          Alcotest.test_case "fuse siblings" `Quick test_fuse_siblings;
          Alcotest.test_case "fuse rejects different bounds" `Quick
            test_fuse_rejects_different_bounds;
          Alcotest.test_case "transform.loop_fuse" `Quick test_fuse_transform_op;
          Alcotest.test_case "transform.loop_peel" `Quick test_peel_transform_op;
        ] );
      ( "matmul-match",
        [
          Alcotest.test_case "positive" `Quick test_match_matmul_positive;
          Alcotest.test_case "rejects non-matmul" `Quick
            test_match_matmul_rejects_1d;
          Alcotest.test_case "unsupported size" `Quick
            test_library_call_unsupported_size;
          Alcotest.test_case "unknown library" `Quick
            test_library_call_unknown_library;
        ] );
    ]
