(* IRDL-lite: declarative op definitions, generated verifiers, constrained
   pseudo-ops, and the dynamic pre/post-condition checking built on them. *)

open Ir
open Dialects
module T = Transform

let ctx = T.Register.full_context ()
let check = Alcotest.check
let cb = Alcotest.bool

let trivial_subview rw m =
  Rewriter.build1 rw ~operands:[ m ]
    ~result_types:[ Ircore.value_typ m ]
    ~attrs:
      [
        ("static_offsets", Attr.Int_array []);
        ("static_sizes", Attr.Int_array []);
        ("static_strides", Attr.Int_array []);
        ("operand_segment_sizes", Attr.Int_array [ 1; 0; 0; 0 ]);
      ]
    "memref.subview"

let memref_arg () =
  let b =
    Ircore.create_block ~args:[ Typ.memref (Typ.static_dims [ 8; 8 ]) Typ.f32 ] ()
  in
  (b, Ircore.block_arg b 0)

(* ------------------------------------------------------------------ *)
(* generated verifiers                                                 *)
(* ------------------------------------------------------------------ *)

let test_base_subview_verifies () =
  let b, m = memref_arg () in
  let rw = Dutil.rw_at_end b in
  let v =
    Memref.subview rw m
      ~offsets:[ Memref.Static 2; Memref.Static 2 ]
      ~sizes:[ Memref.Static 4; Memref.Static 4 ]
      ~strides:[ Memref.Static 1; Memref.Static 1 ]
  in
  let op = Option.get (Ircore.defining_op v) in
  (match Irdl.verify Irdl.subview_def op with
  | Ok () -> ()
  | Error e -> Alcotest.failf "base def rejected valid subview: %s" e);
  (* but the constrained copy must reject it: static offsets non-empty *)
  match Irdl.verify Irdl.subview_constr_def op with
  | Ok () -> Alcotest.fail "constr accepted a non-trivial subview"
  | Error _ -> ()

let test_constr_accepts_trivial () =
  let b, m = memref_arg () in
  let rw = Dutil.rw_at_end b in
  let v = trivial_subview rw m in
  let op = Option.get (Ircore.defining_op v) in
  match Irdl.verify Irdl.subview_constr_def op with
  | Ok () -> ()
  | Error e -> Alcotest.failf "constr rejected a trivial subview: %s" e

let test_constr_rejects_dynamic_offsets () =
  let b, m = memref_arg () in
  let rw = Dutil.rw_at_end b in
  let off = Dutil.const_int rw 3 in
  let v =
    Memref.subview rw m
      ~offsets:[ Memref.Dynamic off; Memref.Dynamic off ]
      ~sizes:[ Memref.Static 4; Memref.Static 4 ]
      ~strides:[ Memref.Static 1; Memref.Static 1 ]
  in
  let op = Option.get (Ircore.defining_op v) in
  match Irdl.verify Irdl.subview_constr_def op with
  | Ok () -> Alcotest.fail "constr accepted dynamic offsets"
  | Error e -> check cb "cardinality mentioned" true (String.length e > 0)

let test_type_constraints () =
  check cb "memref satisfies" true
    (Irdl.satisfies_type
       (Typ.memref (Typ.static_dims [ 4 ]) Typ.f32)
       Irdl.Memref_type);
  check cb "index is not memref" false
    (Irdl.satisfies_type Typ.index Irdl.Memref_type);
  check cb "anyOf" true
    (Irdl.satisfies_type Typ.f32 (Irdl.Any_of [ Irdl.Integer_type; Irdl.Float_type ]))

let test_attr_constraints () =
  check cb "int array" true
    (Irdl.satisfies_attr (Attr.Int_array [ 1 ]) Irdl.Int_array_attr);
  check cb "string is not int array" false
    (Irdl.satisfies_attr (Attr.str "x") Irdl.Int_array_attr)

let test_missing_required_attr () =
  let op =
    Ircore.create
      ~attrs:[ ("static_offsets", Attr.Int_array []) ]
      "memref.subview"
  in
  match Irdl.verify Irdl.subview_def op with
  | Ok () -> Alcotest.fail "missing attrs accepted"
  | Error e -> check cb "mentions missing" true (String.length e > 0)

(* ------------------------------------------------------------------ *)
(* opset integration                                                   *)
(* ------------------------------------------------------------------ *)

let test_opset_covers_op_with_constraints () =
  let b, m = memref_arg () in
  let rw = Dutil.rw_at_end b in
  let triv = Option.get (Ircore.defining_op (trivial_subview rw m)) in
  let nontriv =
    Option.get
      (Ircore.defining_op
         (Memref.subview rw m
            ~offsets:[ Memref.Static 1; Memref.Static 1 ]
            ~sizes:[ Memref.Static 2; Memref.Static 2 ]
            ~strides:[ Memref.Static 1; Memref.Static 1 ]))
  in
  let constr_set = [ Opset.constrained "memref.subview" "constr" ] in
  check cb "trivial covered" true (Irdl.opset_covers_op constr_set triv);
  check cb "non-trivial not covered" false
    (Irdl.opset_covers_op constr_set nontriv);
  check cb "dialect wildcard covers both" true
    (Irdl.opset_covers_op [ Opset.dialect "memref" ] nontriv)

let test_interface_element_coverage () =
  (* conditions may reference interfaces instead of op names (Section 3.3) *)
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  let loop = List.hd (Symbol.collect_ops ~op_name:"scf.for" md) in
  let store = List.hd (Symbol.collect_ops ~op_name:"memref.store" md) in
  let set = [ Opset.interface "loop_like" ] in
  check cb "scf.for implements loop_like" true
    (Irdl.opset_covers_op ~ctx set loop);
  check cb "store does not" false (Irdl.opset_covers_op ~ctx set store);
  check cb "without a context the check is conservative" false
    (Irdl.opset_covers_op set loop);
  (* parse/print round-trip of the element *)
  check cb "parse" true
    (Opset.parse "{interface<loop_like>}" = [ Opset.interface "loop_like" ]);
  check cb "print" true
    (Opset.to_string [ Opset.interface "loop_like" ] = "{interface<loop_like>}")

(* ------------------------------------------------------------------ *)
(* Figure 3 printing                                                   *)
(* ------------------------------------------------------------------ *)

let test_fig3_printing () =
  let s = Fmt.str "%a" Irdl.pp_op_def Irdl.subview_constr_def in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  check cb "shows constrained cardinality" true (contains "Variadic<!index, 0>");
  check cb "shows native check" true (contains "checkTrivialSubview()");
  check cb "names the op" true (contains "subview.constr")

(* ------------------------------------------------------------------ *)
(* dynamic post-condition checking through the interpreter             *)
(* ------------------------------------------------------------------ *)

(* a deliberately buggy pass: claims to consume all scf but silently leaves
   loops behind while introducing an undeclared op *)
let register_buggy_pass () =
  if Passes.Pass.lookup "test-buggy-lowering" = None then
    Passes.Pass.register
      (Passes.Pass.make ~name:"test-buggy-lowering"
         ~summary:"test-only: inaccurate conditions"
         ~pre:[ Opset.dialect "scf" ]
         ~post:[ Opset.exact "cf.br" ]
         (fun _ctx top ->
           (* does NOT remove scf; adds an undeclared arith.constant *)
           let rw = Rewriter.create () in
           (match Symbol.collect_ops ~op_name:"func.func" top with
           | f :: _ -> (
             match Dialects.Func.entry_block f with
             | Some entry -> (
               match Ircore.block_first_op entry with
               | Some first ->
                 Rewriter.set_ip rw (Builder.Before first);
                 ignore
                   (Rewriter.build1 rw ~result_types:[ Typ.llvm_ptr ]
                      "llvm.mlir.undef")
               | None -> ())
             | None -> ())
           | [] -> ());
           Ok ()))

let test_dynamic_check_catches_buggy_pass () =
  register_buggy_pass ();
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  let script =
    T.Build.script (fun rw root ->
        ignore
          (T.Build.apply_registered_pass rw ~pass_name:"test-buggy-lowering"
             root))
  in
  let config = { T.State.default_config with T.State.check_conditions = true } in
  (match T.Schedule.run ~config ctx ~script ~payload:md with
  | Ok _ -> Alcotest.fail "buggy pass not caught"
  | Error (T.Terror.Definite m) ->
    check cb "post-condition violation reported" true (String.length (Diag.message m) > 0)
  | Error (T.Terror.Silenceable m) ->
    Alcotest.failf "expected definite, got silenceable: %s" (Diag.to_string m));
  (* without dynamic checks the same script is accepted *)
  let md2 = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  let script2 =
    T.Build.script (fun rw root ->
        ignore
          (T.Build.apply_registered_pass rw ~pass_name:"test-buggy-lowering"
             root))
  in
  match T.Schedule.run ctx ~script:script2 ~payload:md2 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unchecked run failed: %s" (T.Terror.to_string e)

let test_dynamic_check_accepts_accurate_pass () =
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  let script =
    T.Build.script (fun rw root ->
        ignore
          (T.Build.apply_registered_pass rw ~pass_name:"convert-scf-to-cf" root))
  in
  let config = { T.State.default_config with T.State.check_conditions = true } in
  match T.Schedule.run ~config ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "accurate pass rejected: %s" (T.Terror.to_string e)

let test_dynamic_check_expand_strided_metadata () =
  (* the CS2 kernel: expand's declared post-conditions are accurate for it *)
  let md = Workloads.Subview_kernel.build Workloads.Subview_kernel.Dynamic_offset in
  let script =
    T.Build.script (fun rw root ->
        ignore
          (T.Build.apply_registered_pass rw
             ~pass_name:"expand-strided-metadata" root))
  in
  let config = { T.State.default_config with T.State.check_conditions = true } in
  match T.Schedule.run ~config ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "expand rejected: %s" (T.Terror.to_string e)

let () =
  Alcotest.run "irdl"
    [
      ( "verifiers",
        [
          Alcotest.test_case "base vs constrained subview" `Quick
            test_base_subview_verifies;
          Alcotest.test_case "constr accepts trivial" `Quick
            test_constr_accepts_trivial;
          Alcotest.test_case "constr rejects dynamic offsets" `Quick
            test_constr_rejects_dynamic_offsets;
          Alcotest.test_case "type constraints" `Quick test_type_constraints;
          Alcotest.test_case "attr constraints" `Quick test_attr_constraints;
          Alcotest.test_case "missing required attr" `Quick
            test_missing_required_attr;
        ] );
      ( "opset",
        [
          Alcotest.test_case "constrained coverage" `Quick
            test_opset_covers_op_with_constraints;
          Alcotest.test_case "interface elements" `Quick
            test_interface_element_coverage;
        ] );
      ( "printing",
        [ Alcotest.test_case "figure-3 format" `Quick test_fig3_printing ] );
      ( "dynamic-checks",
        [
          Alcotest.test_case "catches buggy pass" `Quick
            test_dynamic_check_catches_buggy_pass;
          Alcotest.test_case "accepts accurate pass" `Quick
            test_dynamic_check_accepts_accurate_pass;
          Alcotest.test_case "expand-strided-metadata accurate" `Quick
            test_dynamic_check_expand_strided_metadata;
        ] );
    ]
