(* Conversion passes: the Case Study 2 lowerings, lower-affine,
   linalg-to-loops, LICM — checked structurally and by execution. *)

open Ir
open Dialects
open Testutil

(* ------------------------------------------------------------------ *)
(* scf-to-cf                                                           *)
(* ------------------------------------------------------------------ *)

let test_scf_to_cf_structure () =
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  run_pass "convert-scf-to-cf" md;
  check cb "no scf" true (dialect_gone "scf" md);
  check cb "branches present" true (count "cf.cond_br" md > 0);
  Verifier.verify_or_fail ctx md

let test_scf_to_cf_iter_args () =
  (* loop-carried sum must survive CFG conversion *)
  let md = Builtin.create_module () in
  let f, entry = Func.create ~name:"k" ~arg_types:[] ~result_types:[ Typ.f32 ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let zero = Dutil.const_int rw 0 in
  let one = Dutil.const_int rw 1 in
  let ub = Dutil.const_int rw 5 in
  let init = Dutil.const_float rw 1.0 in
  let loop =
    Scf.build_for rw ~lb:zero ~ub ~step:one ~iter_args:[ init ]
      (fun brw _ iters ->
        let two = Dutil.const_float brw 2.0 in
        [ Arith.mulf brw (List.hd iters) two ])
  in
  Func.return rw ~operands:[ Ircore.result loop ] ();
  run_pass "convert-scf-to-cf" md;
  Verifier.verify_or_fail ctx md;
  match Interp.Compile.run_function ~ir_ctx:ctx ~module_:md ~name:"k" [] with
  | Ok ([ Interp.Rvalue.Float v ], _) ->
    check (Alcotest.float 1e-6) "2^5" 32.0 v
  | Ok _ -> Alcotest.fail "unexpected result shape"
  | Error e -> Alcotest.fail e

let test_scf_if_to_cf () =
  let md = Builtin.create_module () in
  let f, entry =
    Func.create ~name:"k" ~arg_types:[ Typ.i1 ] ~result_types:[ Typ.f32 ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let c = Ircore.block_arg entry 0 in
  let ifop =
    Scf.build_if rw ~cond:c ~result_types:[ Typ.f32 ]
      ~then_:(fun brw -> [ Dutil.const_float brw 1.0 ])
      ~else_:(fun brw -> [ Dutil.const_float brw 2.0 ])
  in
  Func.return rw ~operands:[ Ircore.result ifop ] ();
  run_pass "convert-scf-to-cf" md;
  Verifier.verify_or_fail ctx md;
  let run b =
    match
      Interp.Compile.run_function ~ir_ctx:ctx ~module_:md ~name:"k"
        [ Interp.Rvalue.Bool b ]
    with
    | Ok ([ Interp.Rvalue.Float v ], _) -> v
    | _ -> Alcotest.fail "bad result"
  in
  check (Alcotest.float 0.0) "then" 1.0 (run true);
  check (Alcotest.float 0.0) "else" 2.0 (run false)

let build_while_module () =
  (* while (x < 100) x = x * 2, via scf.while *)
  let md = Builtin.create_module () in
  let f, entry =
    Func.create ~name:"k" ~arg_types:[ Typ.index ] ~result_types:[ Typ.index ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let before = Ircore.create_block ~args:[ Typ.index ] () in
  let after = Ircore.create_block ~args:[ Typ.index ] () in
  let w =
    Rewriter.build rw
      ~operands:[ Ircore.block_arg entry 0 ]
      ~result_types:[ Typ.index ]
      ~regions:[ Ircore.region_with_block before; Ircore.region_with_block after ]
      "scf.while"
  in
  let brw = Dutil.rw_at_end before in
  let hundred = Dutil.const_int brw 100 in
  let c = Arith.cmpi brw Arith.Slt (Ircore.block_arg before 0) hundred in
  ignore
    (Rewriter.build brw ~operands:[ c; Ircore.block_arg before 0 ] "scf.condition");
  let arw = Dutil.rw_at_end after in
  let two = Dutil.const_int arw 2 in
  Scf.yield arw ~operands:[ Arith.muli arw (Ircore.block_arg after 0) two ] ();
  Func.return rw ~operands:[ Ircore.result w ] ();
  md

let test_scf_while_to_cf () =
  let md = build_while_module () in
  run_pass "convert-scf-to-cf" md;
  Verifier.verify_or_fail ctx md;
  check cb "no scf left" true (dialect_gone "scf" md);
  match
    Interp.Compile.run_function ~ir_ctx:ctx ~module_:md ~name:"k"
      [ Interp.Rvalue.Int 3 ]
  with
  | Ok ([ Interp.Rvalue.Int 192 ], _) -> ()
  | Ok (rs, _) -> Alcotest.failf "got %a" Fmt.(list Interp.Rvalue.pp) rs
  | Error e -> Alcotest.fail e

let test_forall_expansion () =
  let md = Workloads.Subview_kernel.build Workloads.Subview_kernel.Static_offset in
  run_pass "convert-scf-to-cf" md;
  check cb "forall gone" true (count "scf.forall" md = 0);
  check cb "no scf at all" true (dialect_gone "scf" md)

(* ------------------------------------------------------------------ *)
(* full CS2 pipelines                                                  *)
(* ------------------------------------------------------------------ *)

let test_naive_pipeline_static_offset () =
  let md = Workloads.Subview_kernel.build Workloads.Subview_kernel.Static_offset in
  (match run_pipeline Workloads.Subview_kernel.naive_pipeline md with
  | Ok () -> ()
  | Error e -> Alcotest.failf "naive/static should succeed: %s" e);
  check cb "only llvm + module left" true
    (Symbol.collect md ~f:(fun o ->
         let d = Ircore.op_dialect o in
         d <> "llvm" && d <> "builtin")
    = [])

let test_naive_pipeline_dynamic_offset_fails () =
  let md = Workloads.Subview_kernel.build Workloads.Subview_kernel.Dynamic_offset in
  match run_pipeline Workloads.Subview_kernel.naive_pipeline md with
  | Ok () -> Alcotest.fail "naive/dynamic should fail"
  | Error e ->
    check cb "reports unrealized cast legalization" true
      (contains e "unrealized_conversion_cast")

and test_robust_pipeline_dynamic_offset () =
  let md = Workloads.Subview_kernel.build Workloads.Subview_kernel.Dynamic_offset in
  match run_pipeline Workloads.Subview_kernel.robust_pipeline md with
  | Ok () -> ()
  | Error e -> Alcotest.failf "robust/dynamic should succeed: %s" e

(* ------------------------------------------------------------------ *)
(* lower-affine                                                        *)
(* ------------------------------------------------------------------ *)

let test_lower_affine_semantics () =
  (* f(x, y) = affine.apply (d0 * 4 + s0 floordiv 2) — compare against the
     map evaluation after lowering to arith and executing *)
  let md = Builtin.create_module () in
  let f, entry =
    Func.create ~name:"k" ~arg_types:[ Typ.index; Typ.index ]
      ~result_types:[ Typ.index ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let map =
    Affine.make_map ~num_dims:1 ~num_syms:1
      [
        Affine.(
          Add (Mul (Dim 0, Const 4), Floordiv (Sym 0, Const 2)));
      ]
  in
  let r =
    Affine_ops.apply rw map [ Ircore.block_arg entry 0; Ircore.block_arg entry 1 ]
  in
  Func.return rw ~operands:[ r ] ();
  run_pass "lower-affine" md;
  check cb "no affine left" true (dialect_gone "affine" md);
  let run x y =
    match
      Interp.Compile.run_function ~ir_ctx:ctx ~module_:md ~name:"k"
        [ Interp.Rvalue.Int x; Interp.Rvalue.Int y ]
    with
    | Ok ([ Interp.Rvalue.Int v ], _) -> v
    | _ -> Alcotest.fail "bad result"
  in
  List.iter
    (fun (x, y) ->
      check ci
        (Fmt.str "map(%d,%d)" x y)
        (List.hd (Affine.eval_map map ~dims:[| x |] ~syms:[| y |]))
        (run x y))
    [ (0, 0); (3, 7); (10, 5) ]

let test_lower_affine_min () =
  let md = Builtin.create_module () in
  let f, entry =
    Func.create ~name:"k" ~arg_types:[ Typ.index ] ~result_types:[ Typ.index ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let map =
    Affine.make_map ~num_dims:1 ~num_syms:0
      [ Affine.Dim 0; Affine.Const 10 ]
  in
  let r = Affine_ops.min_ rw map [ Ircore.block_arg entry 0 ] in
  Func.return rw ~operands:[ r ] ();
  run_pass "lower-affine" md;
  let run x =
    match
      Interp.Compile.run_function ~ir_ctx:ctx ~module_:md ~name:"k"
        [ Interp.Rvalue.Int x ]
    with
    | Ok ([ Interp.Rvalue.Int v ], _) -> v
    | _ -> Alcotest.fail "bad result"
  in
  check ci "min(5,10)" 5 (run 5);
  check ci "min(15,10)" 10 (run 15)

(* ------------------------------------------------------------------ *)
(* linalg-to-loops                                                     *)
(* ------------------------------------------------------------------ *)

let test_linalg_matmul_to_loops () =
  let m, n, k = (6, 8, 4) in
  let md = Builtin.create_module () in
  let mt a b = Typ.memref (Typ.static_dims [ a; b ]) Typ.f32 in
  let f, entry =
    Func.create ~name:"matmul"
      ~arg_types:[ mt m k; mt k n; mt m n ]
      ~result_types:[] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  ignore
    (Linalg.matmul rw
       ~a:(Ircore.block_arg entry 0)
       ~b:(Ircore.block_arg entry 1)
       ~c:(Ircore.block_arg entry 2));
  Func.return rw ();
  run_pass "convert-linalg-to-loops" md;
  check cb "linalg gone" true (dialect_gone "linalg" md);
  match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m ~n ~k md with
  | Error e -> Alcotest.fail e
  | Ok (a, b, c_init, c_out, _) ->
    let expected = Workloads.Matmul.reference ~m ~n ~k a b c_init in
    check cb "lowered matmul correct" true
      (Workloads.Matmul.max_abs_diff expected c_out < 1e-4)

let test_linalg_fill_to_loops () =
  let md = Builtin.create_module () in
  let mt = Typ.memref (Typ.static_dims [ 3; 5 ]) Typ.f32 in
  let f, entry = Func.create ~name:"k" ~arg_types:[ mt ] ~result_types:[] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let v = Dutil.const_float rw 7.5 in
  ignore (Linalg.fill rw ~value:v ~dest:(Ircore.block_arg entry 0));
  Func.return rw ();
  run_pass "convert-linalg-to-loops" md;
  let machine = Interp.Machine.create () in
  let buf = Workloads.Matmul.make_matrix machine ~rows:3 ~cols:5 ~seed:1 in
  (match
     Interp.Compile.run_function ~machine ~ir_ctx:ctx ~module_:md ~name:"k"
       [ Interp.Rvalue.Memref buf ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check cb "all filled" true
    (Array.for_all (fun x -> x = 7.5) buf.Interp.Rvalue.buf.Interp.Rvalue.data)

(* ------------------------------------------------------------------ *)
(* tosa pipeline                                                       *)
(* ------------------------------------------------------------------ *)

let test_tosa_pipeline_eliminates_tosa () =
  let md =
    Workloads.Models.build
      { Workloads.Models.sp_name = "tiny"; sp_ops = 60; sp_style = Workloads.Models.Transformer }
  in
  (match Passes.Pass.parse_pipeline Workloads.Models.tosa_pipeline_str with
  | Ok passes -> (
    match Passes.Pass.run_pipeline ctx passes md with
    | Ok _ -> ()
    | Error d -> Alcotest.fail (Diag.to_string d))
  | Error e -> Alcotest.fail (Diag.to_string e));
  check cb "tosa gone" true (dialect_gone "tosa" md);
  check cb "linalg present" true
    (Symbol.collect md ~f:(fun o -> Ircore.op_dialect o = "linalg") <> [])

(* ------------------------------------------------------------------ *)
(* LICM pass                                                           *)
(* ------------------------------------------------------------------ *)

let test_licm_pass () =
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:4 () in
  (* duplicate an invariant computation into the innermost loop *)
  let inner = List.nth (Symbol.collect_ops ~op_name:"scf.for" md) 2 in
  let body = Scf.body_block inner in
  let first = Option.get (Ircore.block_first_op body) in
  let rw = Rewriter.create ~ip:(Builder.Before first) () in
  ignore (Dutil.const_int rw 99);
  check ci "constant inside before" 1 (count "arith.constant" inner);
  run_pass "licm" md;
  check ci "constant hoisted out" 0 (count "arith.constant" inner)

(* ------------------------------------------------------------------ *)
(* inliner                                                             *)
(* ------------------------------------------------------------------ *)

let call_chain_module () =
  let md = Builtin.create_module () in
  (* leaf: double *)
  let leaf, le = Func.create ~name:"double" ~arg_types:[ Typ.f32 ] ~result_types:[ Typ.f32 ] () in
  Ircore.insert_at_end (Builtin.body_block md) leaf;
  let lrw = Dutil.rw_at_end le in
  let two = Dutil.const_float lrw 2.0 in
  Func.return lrw ~operands:[ Arith.mulf lrw (Ircore.block_arg le 0) two ] ();
  (* mid: quadruple = double(double(x)) *)
  let mid, me = Func.create ~name:"quadruple" ~arg_types:[ Typ.f32 ] ~result_types:[ Typ.f32 ] () in
  Ircore.insert_at_end (Builtin.body_block md) mid;
  let mrw = Dutil.rw_at_end me in
  let c1 =
    Func.call mrw ~callee:"double" ~operands:[ Ircore.block_arg me 0 ]
      ~result_types:[ Typ.f32 ]
  in
  let c2 =
    Func.call mrw ~callee:"double" ~operands:[ Ircore.result c1 ]
      ~result_types:[ Typ.f32 ]
  in
  Func.return mrw ~operands:[ Ircore.result c2 ] ();
  (* entry *)
  let f, entry = Func.create ~name:"k" ~arg_types:[ Typ.f32 ] ~result_types:[ Typ.f32 ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let c =
    Func.call rw ~callee:"quadruple" ~operands:[ Ircore.block_arg entry 0 ]
      ~result_types:[ Typ.f32 ]
  in
  Func.return rw ~operands:[ Ircore.result c ] ();
  md

let test_inline_call_chain () =
  let md = call_chain_module () in
  run_pass "inline" md;
  Verifier.verify_or_fail ctx md;
  check ci "all calls inlined" 0 (count "func.call" md);
  match
    Interp.Compile.run_function ~ir_ctx:ctx ~module_:md ~name:"k"
      [ Interp.Rvalue.Float 3.0 ]
  with
  | Ok ([ Interp.Rvalue.Float v ], _) ->
    check (Alcotest.float 1e-6) "4*x" 12.0 v
  | _ -> Alcotest.fail "bad result"

let test_inline_keeps_external_calls () =
  let md = Workloads.Matmul.build_module ~m:8 ~n:8 ~k:4 () in
  (* insert a microkernel call via the transform path *)
  let script =
    Transform.Build.script (fun rw root ->
        let loop = Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        Transform.Build.to_library rw ~library:"libxsmm" loop)
  in
  (match Transform.Schedule.run ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Transform.Terror.to_string e));
  run_pass "inline" md;
  check ci "external libxsmm call kept" 1 (count "func.call" md)

let test_inline_skips_recursive () =
  let md = Builtin.create_module () in
  let f, entry = Func.create ~name:"rec" ~arg_types:[ Typ.f32 ] ~result_types:[ Typ.f32 ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let c =
    Func.call rw ~callee:"rec" ~operands:[ Ircore.block_arg entry 0 ]
      ~result_types:[ Typ.f32 ]
  in
  Func.return rw ~operands:[ Ircore.result c ] ();
  run_pass "inline" md;
  check ci "recursive call kept" 1 (count "func.call" md)

(* ------------------------------------------------------------------ *)
(* scf canonicalizations                                               *)
(* ------------------------------------------------------------------ *)

let test_canonicalize_zero_trip_loop () =
  let md = Workloads.Matmul.build_module ~m:8 ~n:8 ~k:4 () in
  let rw = Rewriter.create () in
  let loop = List.hd (Symbol.collect_ops ~op_name:"scf.for" md) in
  Rewriter.set_ip rw (Builder.Before loop);
  Ircore.set_operand loop 1 (Dutil.const_int rw 0);
  run_pass "canonicalize" md;
  check ci "all loops folded away" 0 (count "scf.for" md)

let test_canonicalize_single_trip_loop () =
  (* build a trip-1 loop computing a value via iter_args *)
  let md = Builtin.create_module () in
  let f, entry = Func.create ~name:"k" ~arg_types:[] ~result_types:[ Typ.f32 ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let zero = Dutil.const_int rw 0 in
  let one = Dutil.const_int rw 1 in
  let init = Dutil.const_float rw 2.0 in
  let loop =
    Scf.build_for rw ~lb:zero ~ub:one ~step:one ~iter_args:[ init ]
      (fun brw _ iters ->
        [ Arith.mulf brw (List.hd iters) (List.hd iters) ])
  in
  Func.return rw ~operands:[ Ircore.result loop ] ();
  run_pass "canonicalize" md;
  check ci "loop inlined" 0 (count "scf.for" md);
  match
    Interp.Compile.run_function ~ir_ctx:ctx ~module_:md ~name:"k" []
  with
  | Ok ([ Interp.Rvalue.Float 4.0 ], _) -> ()
  | Ok (rs, _) ->
    Alcotest.failf "got %a" Fmt.(list Interp.Rvalue.pp) rs
  | Error e -> Alcotest.fail e

let test_canonicalize_constant_if () =
  let md = Builtin.create_module () in
  let f, entry = Func.create ~name:"k" ~arg_types:[] ~result_types:[ Typ.f32 ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let t = Arith.constant rw (Attr.Bool true) Typ.i1 in
  let ifop =
    Scf.build_if rw ~cond:t ~result_types:[ Typ.f32 ]
      ~then_:(fun brw -> [ Dutil.const_float brw 1.0 ])
      ~else_:(fun brw -> [ Dutil.const_float brw 2.0 ])
  in
  Func.return rw ~operands:[ Ircore.result ifop ] ();
  run_pass "canonicalize" md;
  check ci "if folded" 0 (count "scf.if" md);
  match Interp.Compile.run_function ~ir_ctx:ctx ~module_:md ~name:"k" [] with
  | Ok ([ Interp.Rvalue.Float 1.0 ], _) -> ()
  | _ -> Alcotest.fail "then branch expected"

(* ------------------------------------------------------------------ *)
(* pipeline parsing / registry                                         *)
(* ------------------------------------------------------------------ *)

let test_pipeline_parse () =
  (match Passes.Pass.parse_pipeline "canonicalize, cse" with
  | Ok ps -> check ci "two passes" 2 (List.length ps)
  | Error e -> Alcotest.fail (Diag.to_string e));
  match Passes.Pass.parse_pipeline "no-such-pass" with
  | Ok _ -> Alcotest.fail "expected unknown pass error"
  | Error _ -> ()

let test_registry_complete () =
  List.iter
    (fun name ->
      check cb name true (Option.is_some (Passes.Pass.lookup name)))
    ([ "canonicalize"; "cse"; "licm"; "dce"; "symbol-dce";
       "convert-linalg-to-loops"; "lower-affine" ]
    @ Workloads.Subview_kernel.naive_pipeline
    @ [ "tosa-to-linalg"; "tosa-to-linalg-named"; "tosa-to-arith" ])

let () =
  Alcotest.run "passes"
    [
      ( "scf-to-cf",
        [
          Alcotest.test_case "structure" `Quick test_scf_to_cf_structure;
          Alcotest.test_case "iter args preserved" `Quick
            test_scf_to_cf_iter_args;
          Alcotest.test_case "scf.if" `Quick test_scf_if_to_cf;
          Alcotest.test_case "scf.while" `Quick test_scf_while_to_cf;
          Alcotest.test_case "forall expansion" `Quick test_forall_expansion;
        ] );
      ( "cs2-pipelines",
        [
          Alcotest.test_case "naive + static offset ok" `Quick
            test_naive_pipeline_static_offset;
          Alcotest.test_case "naive + dynamic offset fails" `Quick
            test_naive_pipeline_dynamic_offset_fails;
          Alcotest.test_case "robust + dynamic offset ok" `Quick
            test_robust_pipeline_dynamic_offset;
        ] );
      ( "lower-affine",
        [
          Alcotest.test_case "apply semantics" `Quick
            test_lower_affine_semantics;
          Alcotest.test_case "min" `Quick test_lower_affine_min;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "matmul to loops" `Quick
            test_linalg_matmul_to_loops;
          Alcotest.test_case "fill to loops" `Quick test_linalg_fill_to_loops;
        ] );
      ( "tosa",
        [
          Alcotest.test_case "pipeline eliminates tosa" `Quick
            test_tosa_pipeline_eliminates_tosa;
        ] );
      ("licm", [ Alcotest.test_case "hoists from loops" `Quick test_licm_pass ]);
      ( "inline",
        [
          Alcotest.test_case "call chain" `Quick test_inline_call_chain;
          Alcotest.test_case "keeps external calls" `Quick
            test_inline_keeps_external_calls;
          Alcotest.test_case "skips recursive" `Quick test_inline_skips_recursive;
        ] );
      ( "scf-canonicalize",
        [
          Alcotest.test_case "zero-trip loop" `Quick
            test_canonicalize_zero_trip_loop;
          Alcotest.test_case "single-trip loop" `Quick
            test_canonicalize_single_trip_loop;
          Alcotest.test_case "constant if" `Quick test_canonicalize_constant_if;
        ] );
      ( "manager",
        [
          Alcotest.test_case "pipeline parse" `Quick test_pipeline_parse;
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
        ] );
    ]
