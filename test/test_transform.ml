(* The transform interpreter: handles, params, structural ops, invalidation
   semantics, pass/pattern application, error discipline. *)

open Ir
open Dialects
module T = Transform
open Testutil

(* ------------------------------------------------------------------ *)
(* match / handles                                                     *)
(* ------------------------------------------------------------------ *)

let test_match_all_vs_first () =
  let md = matmul () in
  let seen = ref (-1) in
  let script =
    T.Build.script (fun rw root ->
        let all = T.Build.match_op rw ~name:"scf.for" root in
        (* annotate everything matched to observe the count *)
        T.Build.annotate rw ~name:"seen" all)
  in
  ignore (apply_ok script md);
  seen := List.length (Symbol.collect md ~f:(fun o -> Ircore.has_attr o "seen"));
  check ci "all three loops matched" 3 !seen

let test_match_select_second () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let second = T.Build.match_op rw ~select:"second" ~name:"scf.for" root in
        T.Build.annotate rw ~name:"second" second)
  in
  ignore (apply_ok script md);
  let marked = Symbol.collect md ~f:(fun o -> Ircore.has_attr o "second") in
  check ci "exactly one" 1 (List.length marked);
  (* the second loop is the j loop: nested in one loop, contains one *)
  let l = List.hd marked in
  check cb "is the middle loop" true
    (match Ircore.parent_op l with
    | Some p -> p.Ircore.op_name = "scf.for"
    | None -> false)

let test_match_missing_is_silenceable () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        ignore (T.Build.match_op rw ~select:"first" ~name:"scf.while" root))
  in
  match apply_err script md with
  | T.Terror.Silenceable _ -> ()
  | T.Terror.Definite m -> Alcotest.failf "expected silenceable, got definite %s" (Diag.to_string m)

let test_match_missing_all_is_empty_ok () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let none = T.Build.match_op rw ~name:"scf.while" root in
        T.Build.annotate rw ~name:"x" none)
  in
  ignore (apply_ok script md)

let test_match_by_dialect () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let mem = T.Build.match_op rw ~dialect:"memref" root in
        T.Build.annotate rw ~name:"mem" mem)
  in
  ignore (apply_ok script md);
  check ci "all memref ops matched" 4
    (List.length (Symbol.collect md ~f:(fun o -> Ircore.has_attr o "mem")))

let test_match_by_interface () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let loops = T.Build.match_op rw ~interface:"loop_like" root in
        T.Build.annotate rw ~name:"ll" loops)
  in
  ignore (apply_ok script md);
  check ci "loop_like matches the scf.for nest" 3
    (List.length (Symbol.collect md ~f:(fun o -> Ircore.has_attr o "ll")))

let test_match_by_attr_presence () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let marked = T.Build.match_op rw ~name:"scf.for" root in
        T.Build.annotate rw ~name:"phase1" marked;
        (* second query: only ops carrying the marker *)
        let again = T.Build.match_op rw ~has_attr:"phase1" root in
        T.Build.annotate rw ~name:"phase2" again)
  in
  ignore (apply_ok script md);
  check ci "attribute query sees prior annotations" 3
    (List.length (Symbol.collect md ~f:(fun o -> Ircore.has_attr o "phase2")))

let test_match_without_criteria_is_definite () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        ignore (T.Build.match_op rw root))
  in
  match apply_err script md with
  | T.Terror.Definite _ -> ()
  | T.Terror.Silenceable m -> Alcotest.failf "expected definite: %s" (Diag.to_string m)

let test_get_parent () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let store = T.Build.match_op rw ~name:"memref.store" root in
        let f =
          Rewriter.build1 rw ~operands:[ store ]
            ~result_types:[ Typ.transform_any_op ]
            ~attrs:[ ("op_name", Attr.str "func.func") ]
            T.Ops.get_parent_op
        in
        T.Build.annotate rw ~name:"parent" f)
  in
  ignore (apply_ok script md);
  let marked = Symbol.collect md ~f:(fun o -> Ircore.has_attr o "parent") in
  check ci "one func" 1 (List.length marked);
  check cb "is func" true ((List.hd marked).Ircore.op_name = "func.func")

let test_merge_handles () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let loads = T.Build.match_op rw ~name:"memref.load" root in
        let stores = T.Build.match_op rw ~name:"memref.store" root in
        let both =
          Rewriter.build1 rw ~operands:[ loads; stores ]
            ~result_types:[ Typ.transform_any_op ]
            T.Ops.merge_handles_op
        in
        T.Build.annotate rw ~name:"mem" both)
  in
  ignore (apply_ok script md);
  check ci "4 memory ops annotated" 4
    (List.length (Symbol.collect md ~f:(fun o -> Ircore.has_attr o "mem")))

(* ------------------------------------------------------------------ *)
(* params                                                              *)
(* ------------------------------------------------------------------ *)

let test_params_configure_transforms () =
  let md = Workloads.Matmul.build_module ~m:16 ~n:8 ~k:4 () in
  let script =
    T.Build.script (fun rw root ->
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        let p = T.Build.param_constant rw 4 in
        ignore (T.Build.loop_tile rw ~size_params:[ p; p ] ~sizes:[] loop))
  in
  ignore (apply_ok script md);
  check ci "tiled to 5 loops" 5 (count "scf.for" md)

(* ------------------------------------------------------------------ *)
(* invalidation                                                        *)
(* ------------------------------------------------------------------ *)

let test_use_after_consume_definite () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        let _main, rest = T.Build.loop_split rw ~div_by:4 loop in
        T.Build.loop_unroll_full rw rest;
        (* second unroll of the consumed handle *)
        T.Build.loop_unroll_full rw rest)
  in
  match apply_err script md with
  | T.Terror.Definite m ->
    check cb "mentions invalidation" true
      (String.length (Diag.message m) > 0)
  | T.Terror.Silenceable _ -> Alcotest.fail "expected definite error"

let test_consume_invalidates_nested_handles () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let outer = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        let inner = T.Build.match_op rw ~select:"first" ~name:"scf.for" outer in
        (* consuming the outer loop invalidates the nested handle *)
        let _t, _p = T.Build.loop_tile rw ~sizes:[ 2; 2 ] outer in
        T.Build.loop_unroll_full rw inner)
  in
  match apply_err script md with
  | T.Terror.Definite _ -> ()
  | T.Terror.Silenceable m ->
    Alcotest.failf "expected definite invalidation, got silenceable %s" (Diag.to_string m)

let test_failed_transform_does_not_consume () =
  (* a silenceable failure must leave the handle usable *)
  let md = Workloads.Matmul.build_module ~m:7 ~n:8 ~k:4 () in
  let script =
    T.Build.script (fun rw root ->
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        T.Build.alternatives rw
          [
            (fun brw -> T.Build.loop_unroll brw ~factor:2 loop);
            (* trip 7: fails *)
            (fun brw -> T.Build.loop_unroll brw ~factor:7 loop);
            (* works *)
          ])
  in
  ignore (apply_ok script md)

(* ------------------------------------------------------------------ *)
(* structural ops                                                      *)
(* ------------------------------------------------------------------ *)

let test_include_named_sequence () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let inc =
          T.Build.include_ rw ~target:"tile_it" [ root ] ~results:1
        in
        T.Build.annotate rw ~name:"from_include" (Ircore.result inc))
  in
  ignore
    (T.Build.named_sequence script ~name:"tile_it" ~num_args:1 (fun rw args ->
         let loop =
           T.Build.match_op rw ~select:"first" ~name:"scf.for" (List.hd args)
         in
         let _t, p = T.Build.loop_tile rw ~sizes:[ 2; 2 ] loop in
         [ p ]));
  ignore (apply_ok script md);
  check ci "tiled" 5 (count "scf.for" md);
  check ci "include result bound" 1
    (List.length (Symbol.collect md ~f:(fun o -> Ircore.has_attr o "from_include")))

let test_alternatives_first_success_wins () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        T.Build.alternatives rw
          [
            (fun brw -> ignore (T.Build.loop_tile brw ~sizes:[ 2; 2 ] loop));
            (fun brw -> T.Build.loop_unroll_full brw loop);
          ])
  in
  ignore (apply_ok script md);
  (* first alternative applied: loops tiled, not unrolled *)
  check ci "tiled (5 loops)" 5 (count "scf.for" md)

let test_alternatives_all_fail_is_silenceable () =
  let md = Workloads.Matmul.build_module ~m:7 ~n:8 ~k:4 () in
  let script =
    T.Build.script (fun rw root ->
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        T.Build.alternatives rw
          [ (fun brw -> T.Build.loop_unroll brw ~factor:2 loop) ])
  in
  match apply_err script md with
  | T.Terror.Silenceable _ -> ()
  | T.Terror.Definite m -> Alcotest.failf "expected silenceable: %s" (Diag.to_string m)

let test_foreach () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let loops = T.Build.match_op rw ~name:"scf.for" root in
        let body = Ircore.create_block ~args:[ Typ.transform_any_op ] () in
        let brw = Rewriter.create ~ip:(Builder.At_end body) () in
        T.Build.annotate brw ~name:"visited" (Ircore.block_arg body 0);
        ignore
          (Rewriter.build rw ~operands:[ loops ]
             ~regions:[ Ircore.region_with_block body ]
             T.Ops.foreach_op))
  in
  ignore (apply_ok script md);
  check ci "all loops visited individually" 3
    (List.length (Symbol.collect md ~f:(fun o -> Ircore.has_attr o "visited")))

let test_sequence_suppress () =
  let md = matmul () in
  (* a failing match inside a suppressing sequence is swallowed *)
  let inner_seq =
    T.Build.sequence ~failure_propagation:"suppress" (fun rw root ->
        ignore (T.Build.match_op rw ~select:"first" ~name:"scf.while" root))
  in
  match T.Schedule.run ctx ~script:inner_seq ~payload:md with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "suppression failed: %s" (T.Terror.to_string e)

(* ------------------------------------------------------------------ *)
(* pass / pattern application                                          *)
(* ------------------------------------------------------------------ *)

let test_apply_registered_pass () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        ignore (T.Build.apply_registered_pass rw ~pass_name:"convert-scf-to-cf" root))
  in
  ignore (apply_ok script md);
  check ci "no scf" 0 (count "scf.for" md);
  check cb "branches" true (count "cf.cond_br" md > 0)

let test_apply_unknown_pass_definite () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        ignore (T.Build.apply_registered_pass rw ~pass_name:"nope" root))
  in
  match apply_err script md with
  | T.Terror.Definite _ -> ()
  | _ -> Alcotest.fail "expected definite error"

let test_apply_patterns_subset () =
  (* only the enabled pattern fires *)
  let t = Typ.tensor (Typ.static_dims [ 4; 4 ]) Typ.f32 in
  let md = Builtin.create_module () in
  let f, entry = Func.create ~name:"f" ~arg_types:[ t ] ~result_types:[ t ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let x = Ircore.block_arg entry 0 in
  let z = Shlo.constant rw ~typ:t (Attr.Dense_float ([ 0.0 ], t)) in
  let a = Shlo.add rw x z in
  let t1 = Shlo.transpose rw a ~permutation:[ 1; 0 ] ~result_typ:t in
  let t2 = Shlo.transpose rw t1 ~permutation:[ 1; 0 ] ~result_typ:t in
  Func.return rw ~operands:[ t2 ] ();
  let script =
    T.Build.script (fun rw root ->
        let fh = T.Build.match_op rw ~name:"func.func" root in
        T.Build.apply_patterns rw fh [ "shlo.add_zero" ])
  in
  ignore (apply_ok script md);
  check ci "add removed" 0 (count "shlo.add" md);
  check ci "transposes kept (pattern disabled)" 2 (count "shlo.transpose" md)

let test_apply_patterns_unknown_definite () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let fh = T.Build.match_op rw ~name:"func.func" root in
        T.Build.apply_patterns rw fh [ "no.such.pattern" ])
  in
  match apply_err script md with
  | T.Terror.Definite _ -> ()
  | _ -> Alcotest.fail "expected definite error"

(* ------------------------------------------------------------------ *)
(* end-to-end: Figure 1 script                                          *)
(* ------------------------------------------------------------------ *)

let test_fig1_composition () =
  let n = 42 in
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:n () in
  (* hoist + split + tile + unroll on the k loop *)
  let script =
    T.Build.script (fun rw root ->
        let k = T.Build.match_op rw ~select:"third" ~name:"scf.for" root in
        let _h = T.Build.loop_hoist rw k in
        let p = T.Build.param_constant rw 8 in
        let main, rest = T.Build.loop_split rw ~div_by_param:p ~div_by:8 k in
        ignore (T.Build.loop_tile rw ~size_params:[ p ] ~sizes:[] main);
        T.Build.loop_unroll_full rw rest)
  in
  ignore (apply_ok script md);
  Verifier.verify_or_fail ctx md;
  match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m:4 ~n:4 ~k:n md with
  | Error e -> Alcotest.fail e
  | Ok (a, b, c_init, c_out, _) ->
    let expected = Workloads.Matmul.reference ~m:4 ~n:4 ~k:n a b c_init in
    check cb "figure-1 composition preserves semantics" true
      (Workloads.Matmul.max_abs_diff expected c_out < 1e-3)

let test_handles_track_pattern_replacements () =
  (* Section 3.1: the tracking listener repoints handles when a pattern
     replaces their payload op with a new op *)
  let t = Typ.tensor (Typ.static_dims [ 4; 4 ]) Typ.f32 in
  let md = Builtin.create_module () in
  let f, entry = Func.create ~name:"f" ~arg_types:[ t ] ~result_types:[ t ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw0 = Dutil.rw_at_end entry in
  let x = Ircore.block_arg entry 0 in
  let tr = Shlo.transpose rw0 x ~permutation:[ 1; 0 ] ~result_typ:t in
  let neg = Shlo.unary rw0 Shlo.negate_op tr in
  Func.return rw0 ~operands:[ neg ] ();
  let script =
    T.Build.script (fun rw root ->
        let negs = T.Build.match_op rw ~name:"shlo.negate" root in
        let fh = T.Build.match_op rw ~name:"func.func" root in
        (* negate_of_transpose replaces the negate with a new transpose *)
        T.Build.apply_patterns rw fh [ "shlo.negate_of_transpose" ];
        (* the handle now points at the replacement op *)
        T.Build.annotate rw ~name:"tracked" negs)
  in
  (match T.Schedule.run ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (T.Terror.to_string e));
  let tracked = Symbol.collect md ~f:(fun o -> Ircore.has_attr o "tracked") in
  check ci "handle repointed to a replacement" 1 (List.length tracked);
  check Alcotest.string "replacement is the new transpose" "shlo.transpose"
    (List.hd tracked).Ircore.op_name

let test_handles_drop_erased_payload () =
  (* an op erased by a pattern simply disappears from its handles *)
  let t = Typ.tensor (Typ.static_dims [ 4; 4 ]) Typ.f32 in
  let md = Builtin.create_module () in
  let f, entry = Func.create ~name:"f" ~arg_types:[ t ] ~result_types:[ t ] () in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw0 = Dutil.rw_at_end entry in
  let x = Ircore.block_arg entry 0 in
  let z = Shlo.constant rw0 ~typ:t (Attr.Dense_float ([ 0.0 ], t)) in
  let a = Shlo.add rw0 x z in
  Func.return rw0 ~operands:[ a ] ();
  let script =
    T.Build.script (fun rw root ->
        let adds = T.Build.match_op rw ~name:"shlo.add" root in
        let fh = T.Build.match_op rw ~name:"func.func" root in
        T.Build.apply_patterns rw fh [ "shlo.add_zero" ];
        (* add was replaced by the block argument: no defining op to track,
           so the handle becomes empty — annotating is a no-op, not an
           error *)
        T.Build.annotate rw ~name:"gone" adds)
  in
  (match T.Schedule.run ctx ~script ~payload:md with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (T.Terror.to_string e));
  check ci "handle emptied" 0
    (List.length (Symbol.collect md ~f:(fun o -> Ircore.has_attr o "gone")))

let test_split_handle () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let loops = T.Build.match_op rw ~name:"scf.for" root in
        match T.Build.split_handle rw ~n:3 loops with
        | [ _a; b; _c ] -> T.Build.annotate rw ~name:"middle" b
        | _ -> failwith "expected 3 results")
  in
  ignore (apply_ok script md);
  let marked = Symbol.collect md ~f:(fun o -> Ircore.has_attr o "middle") in
  check ci "exactly the middle loop" 1 (List.length marked)

let test_split_handle_arity_mismatch () =
  let md = matmul () in
  let script =
    T.Build.script (fun rw root ->
        let loops = T.Build.match_op rw ~name:"scf.for" root in
        ignore (T.Build.split_handle rw ~n:2 loops))
  in
  match apply_err script md with
  | T.Terror.Silenceable _ -> ()
  | T.Terror.Definite m -> Alcotest.failf "expected silenceable: %s" (Diag.to_string m)

let test_error_context_names_transform () =
  let md = Workloads.Matmul.build_module ~m:7 ~n:8 ~k:4 () in
  let script =
    T.Build.script (fun rw root ->
        let loop = T.Build.match_op rw ~select:"first" ~name:"scf.for" root in
        T.Build.loop_unroll rw ~factor:2 loop)
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  match apply_err script md with
  | T.Terror.Silenceable m ->
    check cb "error names the failing transform" true
      (contains (Diag.to_string m) "transform.loop_unroll")
  | T.Terror.Definite m -> Alcotest.failf "expected silenceable: %s" (Diag.to_string m)

(* dynamic pre-condition checking (Section 3.3) *)
let test_dynamic_precondition_check () =
  let md = matmul () in
  (* lower scf away, then attempt a loop transform: pre-condition {scf.for}
     cannot hold *)
  let script =
    T.Build.script (fun rw root ->
        let r2 =
          T.Build.apply_registered_pass rw ~pass_name:"convert-scf-to-cf" root
        in
        let loop = T.Build.match_op rw ~name:"scf.for" r2 in
        T.Build.loop_unroll_full rw loop)
  in
  let config = { T.State.default_config with T.State.check_conditions = true } in
  match apply ~config script md with
  | Ok _ -> Alcotest.fail "expected pre-condition failure"
  | Error (T.Terror.Silenceable m) ->
    check cb "mentions pre-condition" true (String.length (Diag.message m) > 0)
  | Error (T.Terror.Definite m) ->
    Alcotest.failf "expected silenceable, got %s" (Diag.to_string m)

let () =
  Alcotest.run "transform"
    [
      ( "match",
        [
          Alcotest.test_case "all" `Quick test_match_all_vs_first;
          Alcotest.test_case "select second" `Quick test_match_select_second;
          Alcotest.test_case "missing first is silenceable" `Quick
            test_match_missing_is_silenceable;
          Alcotest.test_case "missing all is empty" `Quick
            test_match_missing_all_is_empty_ok;
          Alcotest.test_case "by dialect" `Quick test_match_by_dialect;
          Alcotest.test_case "by interface" `Quick test_match_by_interface;
          Alcotest.test_case "by attribute presence" `Quick
            test_match_by_attr_presence;
          Alcotest.test_case "no criteria is definite" `Quick
            test_match_without_criteria_is_definite;
          Alcotest.test_case "get_parent" `Quick test_get_parent;
          Alcotest.test_case "merge_handles" `Quick test_merge_handles;
          Alcotest.test_case "handles track replacements" `Quick
            test_handles_track_pattern_replacements;
          Alcotest.test_case "handles drop erased payload" `Quick
            test_handles_drop_erased_payload;
          Alcotest.test_case "split_handle" `Quick test_split_handle;
          Alcotest.test_case "split_handle arity mismatch" `Quick
            test_split_handle_arity_mismatch;
        ] );
      ( "params",
        [ Alcotest.test_case "configure tiling" `Quick test_params_configure_transforms ] );
      ( "invalidation",
        [
          Alcotest.test_case "use after consume" `Quick
            test_use_after_consume_definite;
          Alcotest.test_case "nested handles invalidated" `Quick
            test_consume_invalidates_nested_handles;
          Alcotest.test_case "failure does not consume" `Quick
            test_failed_transform_does_not_consume;
        ] );
      ( "structural",
        [
          Alcotest.test_case "include" `Quick test_include_named_sequence;
          Alcotest.test_case "alternatives pick first success" `Quick
            test_alternatives_first_success_wins;
          Alcotest.test_case "alternatives all fail" `Quick
            test_alternatives_all_fail_is_silenceable;
          Alcotest.test_case "foreach" `Quick test_foreach;
          Alcotest.test_case "sequence suppress" `Quick test_sequence_suppress;
        ] );
      ( "pass+patterns",
        [
          Alcotest.test_case "apply_registered_pass" `Quick
            test_apply_registered_pass;
          Alcotest.test_case "unknown pass" `Quick
            test_apply_unknown_pass_definite;
          Alcotest.test_case "pattern subset" `Quick test_apply_patterns_subset;
          Alcotest.test_case "unknown pattern" `Quick
            test_apply_patterns_unknown_definite;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "figure-1 composition" `Quick test_fig1_composition;
          Alcotest.test_case "error context" `Quick
            test_error_context_names_transform;
          Alcotest.test_case "dynamic pre-condition check" `Quick
            test_dynamic_precondition_check;
        ] );
    ]
