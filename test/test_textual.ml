(* Textual transform scripts: the parse-script / parse-payload / interpret
   flow used by otd-opt, exercised on in-tree strings and the shipped .mlir
   assets. *)

open Ir
module T = Transform

let ctx = T.Register.full_context ()
let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let parse src =
  match Parser.parse_module src with
  | Ok m -> m
  | Error e -> Alcotest.failf "parse: %s" e

let payload_src =
  {|"builtin.module"() ({
  "func.func"() ({
  ^bb0(%out: memref<24xf32>):
    %c0 = "arith.constant"() {value = 0 : index} : () -> index
    %c1 = "arith.constant"() {value = 1 : index} : () -> index
    %n = "arith.constant"() {value = 24 : index} : () -> index
    %v = "arith.constant"() {value = 0x1p+1 : f32} : () -> f32
    "scf.for"(%c0, %n, %c1) ({
    ^bb1(%i: index):
      "memref.store"(%v, %out, %i) : (f32, memref<24xf32>, index) -> ()
      "scf.yield"() : () -> ()
    }) : (index, index, index) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "k", function_type = (memref<24xf32>) -> ()} : () -> ()
}) : () -> ()|}

let script_src =
  {|"builtin.module"() ({
  "transform.named_sequence"() ({
  ^bb0(%root: !transform.any_op):
    %loop = "transform.match_op"(%root) {op_name = "scf.for", select = "first"} : (!transform.any_op) -> !transform.any_op
    %t:2 = "transform.loop_tile"(%loop) {tile_sizes = array<i64: 8>} : (!transform.any_op) -> (!transform.any_op, !transform.any_op)
    "transform.loop_unroll"(%t#1) {factor = 2 : i64} : (!transform.any_op) -> ()
    "transform.yield"() : () -> ()
  }) {sym_name = "__transform_main"} : () -> ()
}) : () -> ()|}

let test_textual_script_applies () =
  let payload = parse payload_src in
  let script = parse script_src in
  Verifier.verify_or_fail ctx script;
  (match T.Schedule.run ctx ~script ~payload with
  | Ok steps -> check ci "3 transforms" 3 steps
  | Error e -> Alcotest.fail (T.Terror.to_string e));
  Verifier.verify_or_fail ctx payload;
  check ci "tile+point loops" 2
    (List.length (Symbol.collect_ops ~op_name:"scf.for" payload));
  (* unroll by 2: two stores in the point loop body *)
  check ci "unrolled stores" 2
    (List.length (Symbol.collect_ops ~op_name:"memref.store" payload))

let test_textual_script_roundtrips () =
  let script = parse script_src in
  let s1 = Printer.op_to_string script in
  let script2 = parse s1 in
  check Alcotest.string "fixpoint" s1 (Printer.op_to_string script2)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* locate the shipped assets relative to the dune workspace root *)
let asset name =
  let rec find dir =
    let candidate = Filename.concat dir (Filename.concat "examples/scripts" name) in
    if Sys.file_exists candidate then Some candidate
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find parent
  in
  find (Sys.getcwd ())

let test_shipped_assets () =
  match (asset "payload_matmul.mlir", asset "tile_and_unroll.mlir") with
  | Some p, Some s ->
    let payload = parse (read_file p) in
    let script = parse (read_file s) in
    Verifier.verify_or_fail ctx payload;
    Verifier.verify_or_fail ctx script;
    (match T.Schedule.run ctx ~script ~payload with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (T.Terror.to_string e));
    Verifier.verify_or_fail ctx payload;
    (* split(24 % 8 = 0) leaves an empty rest loop; tile adds one level *)
    check cb "more loops than before" true
      (List.length (Symbol.collect_ops ~op_name:"scf.for" payload) >= 4);
    (* and the transformed payload still computes a correct matmul *)
    (match Workloads.Matmul.run_matmul ~ir_ctx:ctx ~m:24 ~n:16 ~k:8 payload with
    | Ok (a, b, c_init, c_out, _) ->
      let expected = Workloads.Matmul.reference ~m:24 ~n:16 ~k:8 a b c_init in
      check cb "still a correct matmul" true
        (Workloads.Matmul.max_abs_diff expected c_out < 1e-4)
    | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "shipped .mlir assets not found"

let test_bad_script_reports () =
  let payload = parse payload_src in
  let bad =
    parse
      {|"builtin.module"() ({
  "transform.named_sequence"() ({
  ^bb0(%root: !transform.any_op):
    "transform.no_such_op"(%root) : (!transform.any_op) -> ()
    "transform.yield"() : () -> ()
  }) {sym_name = "__transform_main"} : () -> ()
}) : () -> ()|}
  in
  match T.Schedule.run ctx ~script:bad ~payload with
  | Ok _ -> Alcotest.fail "expected unknown-transform error"
  | Error (T.Terror.Definite m) ->
    check cb "mentions the op" true (String.length (Diag.message m) > 0)
  | Error (T.Terror.Silenceable _) -> Alcotest.fail "expected definite"

let () =
  Alcotest.run "textual"
    [
      ( "scripts",
        [
          Alcotest.test_case "textual script applies" `Quick
            test_textual_script_applies;
          Alcotest.test_case "script round-trips" `Quick
            test_textual_script_roundtrips;
          Alcotest.test_case "shipped .mlir assets" `Quick test_shipped_assets;
          Alcotest.test_case "bad script reports" `Quick test_bad_script_reports;
        ] );
    ]
