(* Structured diagnostics, pass instrumentation and execution tracing:
   handler capture, note attachment, JSON round-trips, hook ordering,
   op-count deltas, the crash reproducer, pipeline-parse accumulation and
   the three engines' trace events. *)

open Ir

let ctx = Transform.Register.full_context ()
let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* diagnostic construction and rendering                               *)
(* ------------------------------------------------------------------ *)

let test_construction () =
  let d = Diag.error ~loc:(Loc.file ~line:3 ~col:7 "f.mlir") "bad op '%s'" "x.y" in
  check cs "message" "bad op 'x.y'" (Diag.message d);
  check cb "is_error" true (Diag.is_error d);
  check cb "not error" false (Diag.is_error (Diag.warning "w"));
  let d = Diag.add_note d (Diag.note "see definition %d" 1) in
  let d = Diag.add_note d (Diag.note "second") in
  check ci "two notes" 2 (List.length (Diag.notes d));
  let s = Diag.to_string d in
  check cb "headline" true (contains s "error: bad op 'x.y'");
  check cb "loc rendered" true (contains s "f.mlir");
  check cb "note indented" true (contains s "  note: see definition 1")

let test_with_loc () =
  let l1 = Loc.file ~line:1 ~col:1 "a.mlir" and l2 = Loc.file ~line:2 ~col:2 "b.mlir" in
  let d = Diag.error "m" in
  check cb "unknown replaced" true (Diag.loc (Diag.with_loc_if_unknown d l1) = l1);
  let d = Diag.with_loc d l2 in
  check cb "known kept" true (Diag.loc (Diag.with_loc_if_unknown d l1) = l2)

let test_json_roundtrip () =
  let d =
    Diag.error
      ~loc:(Loc.file ~line:3 ~col:7 "f.mlir")
      ~notes:[ Diag.note "while doing \"thing\"" ]
      "payload size %d" 4
  in
  let text = Json.to_string (Diag.to_json d) in
  match Json.parse text with
  | Error e -> Alcotest.fail e
  | Ok j ->
    check cs "severity" "error"
      (Option.get (Option.bind (Json.member "severity" j) Json.to_string_opt));
    check cs "message" "payload size 4"
      (Option.get (Option.bind (Json.member "message" j) Json.to_string_opt));
    let notes = Option.get (Option.bind (Json.member "notes" j) Json.to_list) in
    check ci "one note" 1 (List.length notes);
    check cs "note message escaped+parsed back" "while doing \"thing\""
      (Option.get
         (Option.bind (Json.member "message" (List.hd notes))
            Json.to_string_opt))

let test_json_parser_rejects () =
  (match Json.parse "{\"a\": }" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error _ -> ());
  match Json.parse "[1,2] trailing" with
  | Ok _ -> Alcotest.fail "expected trailing error"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* handler engine                                                      *)
(* ------------------------------------------------------------------ *)

let test_capture () =
  let eng = Diag.engine () in
  let result, diags =
    Diag.capture eng (fun () ->
        Diag.emit eng (Diag.error "first");
        Diag.emit eng (Diag.warning "second");
        42)
  in
  check ci "result" 42 result;
  check ci "both captured" 2 (List.length diags);
  check cs "order" "first" (Diag.message (List.hd diags))

let test_innermost_handler_wins () =
  let eng = Diag.engine () in
  let outer = ref [] and inner = ref [] in
  Diag.with_handler eng
    (fun d -> outer := d :: !outer)
    (fun () ->
      Diag.emit eng (Diag.remark "to outer");
      Diag.with_handler eng
        (fun d -> inner := d :: !inner)
        (fun () -> Diag.emit eng (Diag.remark "to inner"));
      Diag.emit eng (Diag.remark "to outer again"));
  check ci "inner got one" 1 (List.length !inner);
  check ci "outer got two" 2 (List.length !outer)

let test_context_capture () =
  let (), diags =
    Context.capture_diags ctx (fun () ->
        Context.emit_diag ctx (Diag.error "via context"))
  in
  check ci "captured" 1 (List.length diags);
  check cs "message" "via context" (Diag.message (List.hd diags))

let test_verifier_emits_diags () =
  (* an unregistered op makes the verifier report a structured error *)
  let md = Dialects.Builtin.create_module () in
  let rw = Dialects.Dutil.rw_at_end (Dialects.Builtin.body_block md) in
  ignore (Ir.Rewriter.build rw "nosuch.op");
  match Verifier.verify ctx md with
  | Ok () -> Alcotest.fail "expected verification failure"
  | Error diags ->
    check cb "at least one" true (diags <> []);
    check cb "all errors" true (List.for_all Diag.is_error diags);
    check cb "names the op" true
      (contains (Diag.to_string (List.hd diags)) "nosuch.op")

(* ------------------------------------------------------------------ *)
(* pass manager: hooks, deltas, reproducer, pipeline parsing           *)
(* ------------------------------------------------------------------ *)

let () =
  Passes.Pass.register
    (Passes.Pass.make ~name:"test-always-fails"
       ~summary:"fails unconditionally (test only)" (fun _ _ ->
         Diag.fail "induced failure"))

let test_hook_ordering () =
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  let events = ref [] in
  let instr =
    Passes.Pass.instrumentation "recorder"
      ~before_pass:(fun p _ -> events := ("before:" ^ p.Passes.Pass.name) :: !events)
      ~after_pass:(fun p _ -> events := ("after:" ^ p.Passes.Pass.name) :: !events)
  in
  let passes = List.map Passes.Pass.lookup_exn [ "canonicalize"; "cse" ] in
  (match Passes.Pass.run_pipeline ~instrumentations:[ instr ] ctx passes md with
  | Ok _ -> ()
  | Error d -> Alcotest.fail (Diag.to_string d));
  check
    Alcotest.(list string)
    "interleaved per pass"
    [ "before:canonicalize"; "after:canonicalize"; "before:cse"; "after:cse" ]
    (List.rev !events)

let test_failure_hook_and_diag () =
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  let seen = ref None in
  let instr =
    Passes.Pass.instrumentation "failure-recorder"
      ~on_failure:(fun p _ ~remaining d ->
        seen := Some (p.Passes.Pass.name, List.map (fun q -> q.Passes.Pass.name) remaining, d))
  in
  let passes =
    List.map Passes.Pass.lookup_exn
      [ "canonicalize"; "test-always-fails"; "cse" ]
  in
  match Passes.Pass.run_pipeline ~instrumentations:[ instr ] ctx passes md with
  | Ok _ -> Alcotest.fail "expected pipeline failure"
  | Error d ->
    check cs "primary message" "induced failure" (Diag.message d);
    check cb "note names the pass" true
      (List.exists
         (fun n -> contains (Diag.message n) "test-always-fails")
         (Diag.notes d));
    (match !seen with
    | None -> Alcotest.fail "on_failure not called"
    | Some (p, remaining, _) ->
      check cs "failing pass" "test-always-fails" p;
      check
        Alcotest.(list string)
        "remaining = failing pass + unrun suffix"
        [ "test-always-fails"; "cse" ] remaining)

let test_op_count_deltas () =
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  let instr, get = Passes.Pass.op_count_deltas () in
  let passes = [ Passes.Pass.lookup_exn "convert-scf-to-cf" ] in
  (match Passes.Pass.run_pipeline ~instrumentations:[ instr ] ctx passes md with
  | Ok _ -> ()
  | Error d -> Alcotest.fail (Diag.to_string d));
  match get () with
  | [ (pass, delta) ] ->
    check cs "pass name" "convert-scf-to-cf" pass;
    let d name = List.assoc_opt name delta in
    check cb "scf.for removed" true
      (match d "scf.for" with Some n -> n < 0 | None -> false);
    check cb "cf.cond_br introduced" true
      (match d "cf.cond_br" with Some n -> n > 0 | None -> false)
  | deltas -> Alcotest.failf "expected one entry, got %d" (List.length deltas)

let test_timing_tree () =
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  let passes = List.map Passes.Pass.lookup_exn [ "canonicalize"; "cse" ] in
  match Passes.Pass.run_pipeline ~verify_each:true ctx passes md with
  | Error d -> Alcotest.fail (Diag.to_string d)
  | Ok r ->
    let t = r.Passes.Pass.timing in
    check cs "root" "pipeline" t.Passes.Pass.t_name;
    check ci "one child per pass" 2 (List.length t.Passes.Pass.t_children);
    List.iter
      (fun c ->
        check
          Alcotest.(list string)
          "verify_each splits run/verify" [ "run"; "verify" ]
          (List.map (fun n -> n.Passes.Pass.t_name) c.Passes.Pass.t_children))
      t.Passes.Pass.t_children;
    (* the JSON rendering of the tree must parse back *)
    match Json.parse (Json.to_string (Passes.Pass.timing_to_json t)) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e

let test_reproducer () =
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  let path = Filename.temp_file "otd_repro" ".mlir" in
  let passes =
    List.map Passes.Pass.lookup_exn
      [ "canonicalize"; "test-always-fails"; "cse" ]
  in
  (match
     Passes.Pass.run_pipeline
       ~instrumentations:[ Passes.Pass.reproducer ~path ]
       ctx passes md
   with
  | Ok _ -> Alcotest.fail "expected pipeline failure"
  | Error _ -> ());
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove path;
  check cb "names failing pass" true
    (contains content "// failing pass: test-always-fails");
  check cb "carries diagnostic" true
    (contains content "// diagnostic: error: induced failure");
  check cb "replay pipeline is the suffix" true
    (contains content "// configuration: --pass-pipeline=test-always-fails,cse");
  (* the dumped IR (comments skipped by the lexer) must re-parse *)
  match Ir.Parser.parse_module content with
  | Ok m -> check cs "module root" "builtin.module" m.Ircore.op_name
  | Error e -> Alcotest.failf "reproducer does not re-parse: %s" e

let test_parse_pipeline_accumulates () =
  match Passes.Pass.parse_pipeline "canonicalize,bogus-one, bogus-two,cse" with
  | Ok _ -> Alcotest.fail "expected unknown-pass diagnostic"
  | Error d ->
    check cb "counts both" true
      (contains (Diag.message d) "2 unknown passes");
    check cb "lists names" true
      (contains (Diag.message d) "bogus-one, bogus-two");
    let notes = List.map Diag.message (Diag.notes d) in
    check ci "one note per bad segment" 2 (List.length notes);
    check cb "first position" true
      (List.exists (fun n -> contains n "'bogus-one' at position 13") notes);
    check cb "second position (trim-aware)" true
      (List.exists (fun n -> contains n "'bogus-two' at position 24") notes)

(* ------------------------------------------------------------------ *)
(* trace events from the three engines                                 *)
(* ------------------------------------------------------------------ *)

let test_trace_pass_and_greedy () =
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  let sink = Trace.create () in
  let passes = List.map Passes.Pass.lookup_exn [ "canonicalize"; "cse" ] in
  (match
     Trace.with_sink sink (fun () -> Passes.Pass.run_pipeline ctx passes md)
   with
  | Ok _ -> ()
  | Error d -> Alcotest.fail (Diag.to_string d));
  let events = Trace.events sink in
  check cb "greedy driver reported" true
    (List.exists (function Trace.Greedy _ -> true | _ -> false) events);
  check cb "no sink, no recording" false (Trace.tracing ());
  match Json.parse (Json.to_string (Trace.to_json sink)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_trace_transform_ops () =
  let md = Workloads.Matmul.build_module ~m:4 ~n:4 ~k:2 () in
  let passes = List.map Passes.Pass.lookup_exn [ "canonicalize" ] in
  let script = Transform.From_pipeline.script_of_pipeline passes in
  let sink = Trace.create () in
  (match
     Trace.with_sink sink (fun () ->
         Transform.Schedule.run ctx ~script ~payload:md)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Transform.Terror.to_string e));
  let transforms =
    List.filter_map
      (function
        | Trace.Transform { tr_op; tr_in; tr_out; _ } ->
          Some (tr_op, tr_in, tr_out)
        | _ -> None)
      (Trace.events sink)
  in
  check cb "transform events recorded" true (transforms <> []);
  check cb "apply_registered_pass traced" true
    (List.exists
       (fun (op, _, _) -> op = "transform.apply_registered_pass")
       transforms);
  (* every traced transform op consumed at least one handle payload size *)
  check cb "payload sizes tracked" true
    (List.for_all (fun (_, tr_in, _) -> tr_in <> []) transforms)

let test_terror_carries_diag () =
  (match Transform.Terror.silenceable ~loc:(Loc.file ~line:1 ~col:1 "s.mlir") "m%d" 1 with
  | Stdlib.Error e ->
    check cb "silenceable" true (Transform.Terror.is_silenceable e);
    check cs "message" "m1" (Transform.Terror.message e);
    check cb "loc kept" true (Diag.loc (Transform.Terror.diag e) <> Loc.Unknown)
  | Ok _ -> Alcotest.fail "expected error");
  match Transform.Terror.definite "d" with
  | Stdlib.Error e ->
    check cb "definite" false (Transform.Terror.is_silenceable e);
    check cb "renders" true (contains (Transform.Terror.to_string e) "definite")
  | Ok _ -> Alcotest.fail "expected error"

let () =
  Alcotest.run "diag"
    [
      ( "diagnostics",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "with-loc" `Quick test_with_loc;
          Alcotest.test_case "json-roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "json-rejects" `Quick test_json_parser_rejects;
        ] );
      ( "handlers",
        [
          Alcotest.test_case "capture" `Quick test_capture;
          Alcotest.test_case "innermost-wins" `Quick test_innermost_handler_wins;
          Alcotest.test_case "context-capture" `Quick test_context_capture;
          Alcotest.test_case "verifier-diags" `Quick test_verifier_emits_diags;
        ] );
      ( "pass-manager",
        [
          Alcotest.test_case "hook-ordering" `Quick test_hook_ordering;
          Alcotest.test_case "failure-hook" `Quick test_failure_hook_and_diag;
          Alcotest.test_case "op-count-deltas" `Quick test_op_count_deltas;
          Alcotest.test_case "timing-tree" `Quick test_timing_tree;
          Alcotest.test_case "reproducer" `Quick test_reproducer;
          Alcotest.test_case "parse-accumulates" `Quick
            test_parse_pipeline_accumulates;
        ] );
      ( "trace",
        [
          Alcotest.test_case "pass-and-greedy" `Quick test_trace_pass_and_greedy;
          Alcotest.test_case "transform-ops" `Quick test_trace_transform_ops;
          Alcotest.test_case "terror-diag" `Quick test_terror_carries_diag;
        ] );
    ]
