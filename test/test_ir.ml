(* IR core: values, use-def chains, op/block/region structure, cloning. *)

open Ir

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let mkop ?operands ?result_types ?attrs ?regions name =
  Ircore.create ?operands ?result_types ?attrs ?regions name

(* ------------------------------------------------------------------ *)
(* values and uses                                                     *)
(* ------------------------------------------------------------------ *)

let test_results_and_uses () =
  let a = mkop ~result_types:[ Typ.i32 ] "t.a" in
  let b = mkop ~result_types:[ Typ.i32 ] "t.b" in
  let add =
    mkop ~operands:[ Ircore.result a; Ircore.result b ] ~result_types:[ Typ.i32 ]
      "t.add"
  in
  check ci "a has one use" 1 (Ircore.num_uses (Ircore.result a));
  check cb "a has exactly one use" true (Ircore.has_one_use (Ircore.result a));
  check cb "unused has no single use" false
    (Ircore.has_one_use (Ircore.result add));
  let both = mkop ~operands:[ Ircore.result a ] "t.second_user" in
  ignore both;
  check cb "two uses is not one" false (Ircore.has_one_use (Ircore.result a));
  check ci "add has two operands" 2 (Ircore.num_operands add);
  check cb "use points back at add" true
    (List.exists
       (fun u -> u.Ircore.u_op == add)
       (Ircore.value_uses (Ircore.result a)))

let test_set_operand_updates_uses () =
  let a = mkop ~result_types:[ Typ.i32 ] "t.a" in
  let b = mkop ~result_types:[ Typ.i32 ] "t.b" in
  let use = mkop ~operands:[ Ircore.result a ] "t.use" in
  Ircore.set_operand use 0 (Ircore.result b);
  check ci "a now unused" 0 (Ircore.num_uses (Ircore.result a));
  check ci "b now used" 1 (Ircore.num_uses (Ircore.result b))

let test_same_value_twice () =
  let a = mkop ~result_types:[ Typ.i32 ] "t.a" in
  let v = Ircore.result a in
  let use = mkop ~operands:[ v; v ] "t.use2" in
  check ci "two uses recorded" 2 (Ircore.num_uses v);
  Ircore.set_operand use 0 v;
  check ci "idempotent set keeps both" 2 (Ircore.num_uses v)

let test_rauw () =
  let a = mkop ~result_types:[ Typ.i32 ] "t.a" in
  let b = mkop ~result_types:[ Typ.i32 ] "t.b" in
  let u1 = mkop ~operands:[ Ircore.result a ] "t.u1" in
  let u2 = mkop ~operands:[ Ircore.result a; Ircore.result a ] "t.u2" in
  Ircore.replace_all_uses_with (Ircore.result a) ~with_:(Ircore.result b);
  check ci "a unused" 0 (Ircore.num_uses (Ircore.result a));
  check ci "b has 3 uses" 3 (Ircore.num_uses (Ircore.result b));
  check cb "u1 rewired" true (Ircore.operand u1 == Ircore.result b);
  check cb "u2 rewired" true (Ircore.operand ~index:1 u2 == Ircore.result b)

(* ------------------------------------------------------------------ *)
(* block linkage                                                       *)
(* ------------------------------------------------------------------ *)

let ops_names b = List.map (fun o -> o.Ircore.op_name) (Ircore.block_ops b)

let test_insert_order () =
  let b = Ircore.create_block () in
  let o1 = mkop "t.o1" and o2 = mkop "t.o2" and o3 = mkop "t.o3" in
  Ircore.insert_at_end b o1;
  Ircore.insert_at_end b o3;
  Ircore.insert_before ~anchor:o3 o2;
  check (Alcotest.list Alcotest.string) "order" [ "t.o1"; "t.o2"; "t.o3" ]
    (ops_names b);
  check ci "num_ops" 3 (Ircore.block_num_ops b)

let test_insert_after_and_start () =
  let b = Ircore.create_block () in
  let o2 = mkop "t.o2" in
  Ircore.insert_at_end b o2;
  let o1 = mkop "t.o1" in
  Ircore.insert_at_start b o1;
  let o3 = mkop "t.o3" in
  Ircore.insert_after ~anchor:o2 o3;
  check (Alcotest.list Alcotest.string) "order" [ "t.o1"; "t.o2"; "t.o3" ]
    (ops_names b)

let test_detach_and_move () =
  let b = Ircore.create_block () in
  let o1 = mkop "t.o1" and o2 = mkop "t.o2" and o3 = mkop "t.o3" in
  List.iter (Ircore.insert_at_end b) [ o1; o2; o3 ];
  Ircore.move_before ~anchor:o1 o3;
  check (Alcotest.list Alcotest.string) "moved" [ "t.o3"; "t.o1"; "t.o2" ]
    (ops_names b);
  Ircore.detach o1;
  check (Alcotest.list Alcotest.string) "detached" [ "t.o3"; "t.o2" ]
    (ops_names b);
  check cb "o1 unparented" true (Ircore.op_parent o1 = None)

let test_is_before () =
  let b = Ircore.create_block () in
  let o1 = mkop "t.o1" and o2 = mkop "t.o2" in
  Ircore.insert_at_end b o1;
  Ircore.insert_at_end b o2;
  check cb "o1 before o2" true (Ircore.is_before_in_block o1 o2);
  check cb "o2 not before o1" false (Ircore.is_before_in_block o2 o1)

let test_double_attach_rejected () =
  let b = Ircore.create_block () in
  let o = mkop "t.o" in
  Ircore.insert_at_end b o;
  Alcotest.check_raises "double attach"
    (Invalid_argument "op t.o is already attached to a block") (fun () ->
      Ircore.insert_at_end b o)

(* ------------------------------------------------------------------ *)
(* erasure                                                             *)
(* ------------------------------------------------------------------ *)

let test_erase_simple () =
  let b = Ircore.create_block () in
  let a = mkop ~result_types:[ Typ.i32 ] "t.a" in
  Ircore.insert_at_end b a;
  let use = mkop ~operands:[ Ircore.result a ] "t.use" in
  Ircore.insert_at_end b use;
  Ircore.erase use;
  check ci "a unused after erasing its user" 0 (Ircore.num_uses (Ircore.result a));
  check ci "one op left" 1 (Ircore.block_num_ops b)

let test_erase_with_live_uses_raises () =
  let b = Ircore.create_block () in
  let a = mkop ~result_types:[ Typ.i32 ] "t.a" in
  Ircore.insert_at_end b a;
  let use = mkop ~operands:[ Ircore.result a ] "t.use" in
  Ircore.insert_at_end b use;
  (match Ircore.erase a with
  | () -> Alcotest.fail "expected Has_live_uses"
  | exception Ircore.Has_live_uses _ -> ());
  check ci "nothing erased" 2 (Ircore.block_num_ops b)

let test_erase_region_drops_nested_uses () =
  let outer_def = mkop ~result_types:[ Typ.i32 ] "t.def" in
  let inner_block = Ircore.create_block () in
  let user = mkop ~operands:[ Ircore.result outer_def ] "t.inner_use" in
  Ircore.insert_at_end inner_block user;
  let region_op =
    mkop ~regions:[ Ircore.region_with_block inner_block ] "t.region"
  in
  check ci "one use through region" 1 (Ircore.num_uses (Ircore.result outer_def));
  Ircore.erase region_op;
  check ci "nested use dropped" 0 (Ircore.num_uses (Ircore.result outer_def))

let test_replace () =
  let b = Ircore.create_block () in
  let a = mkop ~result_types:[ Typ.i32 ] "t.a" in
  let a2 = mkop ~result_types:[ Typ.i32 ] "t.a2" in
  Ircore.insert_at_end b a;
  Ircore.insert_at_end b a2;
  let use = mkop ~operands:[ Ircore.result a ] "t.use" in
  Ircore.insert_at_end b use;
  Ircore.replace a ~with_:[ Ircore.result a2 ];
  check cb "use rewired to a2" true (Ircore.operand use == Ircore.result a2);
  check ci "two ops left" 2 (Ircore.block_num_ops b)

(* ------------------------------------------------------------------ *)
(* regions and walking                                                 *)
(* ------------------------------------------------------------------ *)

let nested_module () =
  let inner = Ircore.create_block () in
  Ircore.insert_at_end inner (mkop "t.leaf1");
  Ircore.insert_at_end inner (mkop "t.leaf2");
  let mid = mkop ~regions:[ Ircore.region_with_block inner ] "t.mid" in
  let outer_block = Ircore.create_block () in
  Ircore.insert_at_end outer_block mid;
  Ircore.insert_at_end outer_block (mkop "t.leaf3");
  mkop ~regions:[ Ircore.region_with_block outer_block ] "t.top"

let test_walk_pre_post () =
  let top = nested_module () in
  let pre = ref [] and post = ref [] in
  Ircore.walk_op top
    ~pre:(fun o -> pre := o.Ircore.op_name :: !pre)
    ~post:(fun o -> post := o.Ircore.op_name :: !post);
  check (Alcotest.list Alcotest.string) "pre-order"
    [ "t.top"; "t.mid"; "t.leaf1"; "t.leaf2"; "t.leaf3" ]
    (List.rev !pre);
  check (Alcotest.list Alcotest.string) "post-order"
    [ "t.leaf1"; "t.leaf2"; "t.mid"; "t.leaf3"; "t.top" ]
    (List.rev !post)

let test_parent_and_ancestor () =
  let top = nested_module () in
  let leaf1 = List.hd (Symbol.collect_ops ~op_name:"t.leaf1" top) in
  let mid = List.hd (Symbol.collect_ops ~op_name:"t.mid" top) in
  check cb "parent of leaf1 is mid" true
    (match Ircore.parent_op leaf1 with Some p -> p == mid | None -> false);
  check cb "top ancestor of leaf1" true (Ircore.is_ancestor ~ancestor:top leaf1);
  check cb "leaf1 not ancestor of mid" false
    (Ircore.is_ancestor ~ancestor:leaf1 mid)

let test_value_defined_within () =
  let inner = Ircore.create_block ~args:[ Typ.i32 ] () in
  let mid = mkop ~regions:[ Ircore.region_with_block inner ] "t.mid" in
  check cb "block arg defined within region op" true
    (Ircore.value_defined_within ~ancestor:mid (Ircore.block_arg inner 0));
  let free = mkop ~result_types:[ Typ.i32 ] "t.free" in
  check cb "free value not within" false
    (Ircore.value_defined_within ~ancestor:mid (Ircore.result free))

(* ------------------------------------------------------------------ *)
(* cloning                                                             *)
(* ------------------------------------------------------------------ *)

let test_clone_remaps_internal_uses () =
  let b = Ircore.create_block () in
  let a = mkop ~result_types:[ Typ.i32 ] "t.a" in
  Ircore.insert_at_end b a;
  let u = mkop ~operands:[ Ircore.result a ] ~result_types:[ Typ.i32 ] "t.u" in
  Ircore.insert_at_end b u;
  let top = mkop ~regions:[ Ircore.region_with_block b ] "t.top" in
  let cloned = Ircore.clone_op top in
  let orig_a = List.hd (Symbol.collect_ops ~op_name:"t.a" top) in
  let new_u = List.hd (Symbol.collect_ops ~op_name:"t.u" cloned) in
  check cb "cloned use points at cloned def" true
    (not (Ircore.operand new_u == Ircore.result orig_a));
  check ci "original def uses unchanged" 1 (Ircore.num_uses (Ircore.result orig_a))

let test_clone_keeps_external_uses () =
  let ext = mkop ~result_types:[ Typ.i32 ] "t.ext" in
  let b = Ircore.create_block () in
  Ircore.insert_at_end b (mkop ~operands:[ Ircore.result ext ] "t.use");
  let top = mkop ~regions:[ Ircore.region_with_block b ] "t.top" in
  let cloned = Ircore.clone_op top in
  let new_use = List.hd (Symbol.collect_ops ~op_name:"t.use" cloned) in
  check cb "external operand preserved" true
    (Ircore.operand new_use == Ircore.result ext);
  check ci "ext now has two uses" 2 (Ircore.num_uses (Ircore.result ext))

let test_clone_with_mapping () =
  let a = mkop ~result_types:[ Typ.i32 ] "t.a" in
  let b = mkop ~result_types:[ Typ.i32 ] "t.b" in
  let u = mkop ~operands:[ Ircore.result a ] "t.u" in
  let mapping = Ircore.Mapping.create () in
  Ircore.Mapping.map_value mapping ~from:(Ircore.result a) ~to_:(Ircore.result b);
  let u' = Ircore.clone_op ~mapping u in
  check cb "mapped operand" true (Ircore.operand u' == Ircore.result b)

(* ------------------------------------------------------------------ *)
(* attributes                                                          *)
(* ------------------------------------------------------------------ *)

let test_attrs () =
  let o = mkop ~attrs:[ ("x", Attr.int 1) ] "t.o" in
  check cb "has x" true (Ircore.has_attr o "x");
  Ircore.set_attr o "y" (Attr.str "hello");
  check cb "get y" true (Ircore.attr o "y" = Some (Attr.str "hello"));
  Ircore.set_attr o "x" (Attr.int 2);
  check cb "overwrite x" true (Ircore.attr o "x" = Some (Attr.int 2));
  Ircore.remove_attr o "x";
  check cb "removed" false (Ircore.has_attr o "x")

(* ------------------------------------------------------------------ *)
(* Univ maps                                                           *)
(* ------------------------------------------------------------------ *)

let test_univ () =
  let k1 : int Util.Univ.key = Util.Univ.create_key "k1" in
  let k2 : string Util.Univ.key = Util.Univ.create_key "k2" in
  let m = Util.Univ.(empty |> add k1 42 |> add k2 "x") in
  check (Alcotest.option ci) "k1" (Some 42) (Util.Univ.find k1 m);
  check (Alcotest.option Alcotest.string) "k2" (Some "x") (Util.Univ.find k2 m);
  let k3 : int Util.Univ.key = Util.Univ.create_key "k1" in
  check cb "same-name distinct key misses" true (Util.Univ.find k3 m = None)

(* ------------------------------------------------------------------ *)
(* property: random op soup keeps use-def consistent                   *)
(* ------------------------------------------------------------------ *)

let prop_use_def_consistent =
  QCheck.Test.make ~count:100 ~name:"random mutations keep use-def consistent"
    QCheck.(list (pair small_nat small_nat))
    (fun moves ->
      let b = Ircore.create_block () in
      let defs = Array.init 8 (fun i -> mkop ~result_types:[ Typ.i32 ] (Fmt.str "t.d%d" i)) in
      Array.iter (Ircore.insert_at_end b) defs;
      let users =
        Array.init 8 (fun i ->
            let o =
              mkop ~operands:[ Ircore.result defs.(i) ] (Fmt.str "t.u%d" i)
            in
            Ircore.insert_at_end b o;
            o)
      in
      List.iter
        (fun (ui, di) ->
          Ircore.set_operand users.(ui mod 8) 0 (Ircore.result defs.(di mod 8)))
        moves;
      (* every operand appears in its value's use list and vice versa *)
      Array.for_all
        (fun u ->
          let v = Ircore.operand u in
          List.exists (fun use -> use.Ircore.u_op == u) (Ircore.value_uses v))
        users
      && Array.for_all
           (fun d ->
             List.for_all
               (fun use ->
                 Ircore.operand ~index:use.Ircore.u_index use.Ircore.u_op
                 == Ircore.result d)
               (Ircore.value_uses (Ircore.result d)))
           defs)

let () =
  Alcotest.run "ir-core"
    [
      ( "values",
        [
          Alcotest.test_case "results and uses" `Quick test_results_and_uses;
          Alcotest.test_case "set_operand updates uses" `Quick
            test_set_operand_updates_uses;
          Alcotest.test_case "same value used twice" `Quick test_same_value_twice;
          Alcotest.test_case "replace_all_uses_with" `Quick test_rauw;
        ] );
      ( "blocks",
        [
          Alcotest.test_case "insert order" `Quick test_insert_order;
          Alcotest.test_case "insert after/start" `Quick
            test_insert_after_and_start;
          Alcotest.test_case "detach and move" `Quick test_detach_and_move;
          Alcotest.test_case "is_before_in_block" `Quick test_is_before;
          Alcotest.test_case "double attach rejected" `Quick
            test_double_attach_rejected;
        ] );
      ( "erasure",
        [
          Alcotest.test_case "erase drops operand uses" `Quick test_erase_simple;
          Alcotest.test_case "erase with live uses raises" `Quick
            test_erase_with_live_uses_raises;
          Alcotest.test_case "erase region drops nested uses" `Quick
            test_erase_region_drops_nested_uses;
          Alcotest.test_case "replace" `Quick test_replace;
        ] );
      ( "structure",
        [
          Alcotest.test_case "walk pre/post order" `Quick test_walk_pre_post;
          Alcotest.test_case "parent and ancestor" `Quick
            test_parent_and_ancestor;
          Alcotest.test_case "value_defined_within" `Quick
            test_value_defined_within;
        ] );
      ( "clone",
        [
          Alcotest.test_case "remaps internal uses" `Quick
            test_clone_remaps_internal_uses;
          Alcotest.test_case "keeps external uses" `Quick
            test_clone_keeps_external_uses;
          Alcotest.test_case "explicit mapping" `Quick test_clone_with_mapping;
        ] );
      ( "attrs+univ",
        [
          Alcotest.test_case "attribute dict" `Quick test_attrs;
          Alcotest.test_case "univ map" `Quick test_univ;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_use_def_consistent ]);
    ]
