(* Helpers shared by the test suites: context construction, pass/pipeline
   running, transform-script application, and small structural queries.
   Every test executable links this module (the dune [tests] stanza links
   all modules in the directory), so suites stay declaration-free. *)

open Ir

let ctx = Transform.Register.full_context ()
let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* ---------------- passes ---------------- *)

let run_pass name md =
  match (Passes.Pass.lookup_exn name).Passes.Pass.run ctx md with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pass %s: %s" name (Diag.to_string e)

let run_pipeline names md =
  match
    Passes.Pass.run_pipeline ctx (List.map Passes.Pass.lookup_exn names) md
  with
  | Ok (_ : Passes.Pass.run_result) -> Ok ()
  | Error d -> Error (Diag.to_string d)

(* ---------------- structural queries ---------------- *)

let count name md = List.length (Symbol.collect_ops ~op_name:name md)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let dialect_gone d md =
  Symbol.collect md ~f:(fun o -> Ircore.op_dialect o = d) = []

let check_verifies what m =
  match Verifier.verify ctx m with
  | Ok () -> ()
  | Error diags ->
    Alcotest.failf "%s: verification failed: %a" what
      (Fmt.list ~sep:Fmt.comma Diag.pp)
      diags

(* ---------------- transform scripts ---------------- *)

let apply ?config script payload =
  Transform.Schedule.run ?config ctx ~script ~payload

let apply_ok ?config script payload =
  match apply ?config script payload with
  | Ok steps -> steps
  | Error e -> Alcotest.failf "transform failed: %s" (Transform.Terror.to_string e)

let apply_err ?config script payload =
  match apply ?config script payload with
  | Ok _ -> Alcotest.fail "expected transform error"
  | Error e -> e

let matmul () = Workloads.Matmul.build_module ~m:8 ~n:8 ~k:4 ()

(* ---------------- remarks ---------------- *)

(** Run [f] with an optimization-remark handler installed; returns [f]'s
    result and the remarks in emission order. *)
let with_captured_remarks f =
  let acc = ref [] in
  let result = Remark.with_handler (fun r -> acc := r :: !acc) f in
  (result, List.rev !acc)

(* ---------------- files ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match Parser.parse_module (read_file path) with
  | Ok m -> m
  | Error e -> Alcotest.failf "%s: parse error: %s" path e
