(* Worklist-driven greedy engine: pattern indexing, listener push-back,
   folder uniquing, convergence diagnostics, and the sweep-parity oracle. *)

open Ir
open Dialects

let ctx = Transform.Register.full_context ()

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let count_ops name md = List.length (Symbol.collect_ops ~op_name:name md)

(* A function whose body is a chain of [n] foldable arith.addi ops:
   a_1 = 1 + 1, a_i = a_{i-1} + 1. Everything folds to constants. *)
let addi_chain n =
  let md = Builtin.create_module () in
  let f, entry =
    Func.create ~name:"chain" ~arg_types:[] ~result_types:[ Typ.i32 ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let one = Dutil.const_int rw ~typ:Typ.i32 1 in
  let acc = ref one in
  for _ = 1 to n do
    acc := Arith.addi rw !acc one
  done;
  Func.return rw ~operands:[ !acc ] ();
  md

(* ------------------------------------------------------------------ *)
(* sub-quadratic work on foldable chains                               *)
(* ------------------------------------------------------------------ *)

let attempts_for n =
  let md = addi_chain n in
  let stats = Greedy.create_stats () in
  let converged = Dutil.apply_greedy ~stats ctx ~patterns:[] md in
  check cb (Fmt.str "chain %d converges" n) true converged;
  check ci (Fmt.str "chain %d fully folded" n) 0 (count_ops "arith.addi" md);
  stats.Greedy.match_attempts

let test_subquadratic_attempts () =
  let a100 = attempts_for 100 in
  let a200 = attempts_for 200 in
  check cb "some matching happened" true (a100 > 0);
  (* linear worklist growth: doubling the chain must not quadruple work *)
  check cb
    (Fmt.str "attempts grow sub-quadratically (%d -> %d)" a100 a200)
    true
    (a200 < 4 * a100)

(* ------------------------------------------------------------------ *)
(* root-indexed pattern sets                                           *)
(* ------------------------------------------------------------------ *)

(* A pattern rooted at an absent op name must cost zero match attempts in
   the worklist engine; the sweep driver pays one per op. *)
let test_root_index_skips_foreign_ops () =
  let n_ops = 50 in
  let build () =
    let b = Ircore.create_block () in
    for _ = 1 to n_ops do
      Ircore.insert_at_end b (Ircore.create "t.other")
    done;
    Ircore.create ~regions:[ Ircore.region_with_block b ] "t.top"
  in
  let p =
    Pattern.make ~root:"t.target" ~name:"never" (fun _ _ -> false)
  in
  let stats_new = Greedy.create_stats () in
  ignore
    (Greedy.apply ~stats:stats_new ctx
       ~patterns:(Frozen_patterns.freeze [ p ])
       (build ()));
  let stats_old = Greedy.create_stats () in
  ignore (Greedy.apply_sweep ~stats:stats_old ctx ~patterns:[ p ] (build ()));
  check ci "worklist: no candidates, no attempts" 0
    stats_new.Greedy.match_attempts;
  check ci "sweep: one applicability check per op" n_ops
    stats_old.Greedy.match_attempts

(* ------------------------------------------------------------------ *)
(* listener push-back                                                  *)
(* ------------------------------------------------------------------ *)

(* The user of a replaced op must be revisited: t.user is visited once
   while its operand still comes from t.a, then t.marker triggers an
   in-place poke, t.a is replaced by t.b, and the push-back must revisit
   t.user so it can finally fire on the t.b-defined operand. *)
let test_pushback_revisits_users_after_replace () =
  let b = Ircore.create_block () in
  let a = Ircore.create ~result_types:[ Typ.i32 ] "t.a" in
  let user = Ircore.create ~operands:[ Ircore.result a ] "t.user" in
  let marker = Ircore.create "t.marker" in
  List.iter (Ircore.insert_at_end b) [ a; user; marker ];
  let top = Ircore.create ~regions:[ Ircore.region_with_block b ] "t.top" in
  let armed = ref false in
  let user_saw = ref [] in
  let p_user =
    Pattern.make ~root:"t.user" ~name:"user" (fun rw op ->
        let def_name =
          match Ircore.defining_op (Ircore.operand op) with
          | Some d -> d.Ircore.op_name
          | None -> "<arg>"
        in
        user_saw := def_name :: !user_saw;
        if def_name = "t.b" then begin
          Rewriter.erase_op rw op;
          true
        end
        else false)
  in
  let p_a =
    Pattern.make ~root:"t.a" ~name:"a-to-b" (fun rw op ->
        if !armed then begin
          ignore (Rewriter.replace_op_with rw op ~operands:[] "t.b");
          true
        end
        else false)
  in
  let p_marker =
    Pattern.make ~root:"t.marker" ~name:"marker" (fun rw op ->
        armed := true;
        (* in-place poke: on_modified must push t.a back on the worklist *)
        Rewriter.modify_in_place rw a (fun () -> ());
        Rewriter.erase_op rw op;
        true)
  in
  let converged =
    Greedy.apply
      ~config:{ Greedy.default_config with fold = false; remove_dead = false }
      ctx
      ~patterns:(Frozen_patterns.freeze [ p_user; p_a; p_marker ])
      top
  in
  check cb "converged" true converged;
  let saw = List.rev !user_saw in
  check cb
    (Fmt.str "user revisited after replacement (saw %a)"
       Fmt.(Dump.list string)
       saw)
    true
    (List.length saw >= 2 && List.mem "t.b" saw && List.hd saw = "t.a");
  check ci "user finally rewritten away" 0 (count_ops "t.user" top);
  check ci "t.a replaced" 0 (count_ops "t.a" top)

(* Erasing a dead user must enqueue the defs of its operands, so an entire
   dead pure chain is collected from a single post-order seeding. *)
let test_pushback_collects_newly_dead_defs () =
  let md = Builtin.create_module () in
  let f, entry =
    Func.create ~name:"f" ~arg_types:[ Typ.i32 ] ~result_types:[ Typ.i32 ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let x = Ircore.block_arg entry 0 in
  let m = Arith.muli rw x x in
  let u = Arith.muli rw m m in
  ignore u;
  (* u is unused: erasing it makes m newly dead *)
  Func.return rw ~operands:[ x ] ();
  let stats = Greedy.create_stats () in
  ignore (Dutil.apply_greedy ~stats ctx ~patterns:[] md);
  check ci "whole dead chain erased" 0 (count_ops "arith.muli" md);
  check ci "two dce erasures" 2 stats.Greedy.dce

(* ------------------------------------------------------------------ *)
(* folder-level constant uniquing                                      *)
(* ------------------------------------------------------------------ *)

let test_folder_uniques_constants () =
  let md = Builtin.create_module () in
  let f, entry =
    Func.create ~name:"f" ~arg_types:[]
      ~result_types:[ Typ.i32; Typ.i32 ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let mk () =
    let a = Dutil.const_int rw ~typ:Typ.i32 20 in
    let b = Dutil.const_int rw ~typ:Typ.i32 22 in
    Arith.addi rw a b
  in
  let r1 = mk () in
  let r2 = mk () in
  Func.return rw ~operands:[ r1; r2 ] ();
  ignore (Dutil.apply_greedy ctx ~patterns:[] md);
  check ci "both addi folded" 0 (count_ops "arith.addi" md);
  (* one uniqued 42, not one per folded op; the 20/22 operands are dce'd *)
  check ci "single uniqued constant" 1 (count_ops "arith.constant" md);
  (* and it was hoisted to the start of the entry block *)
  (match Ircore.block_first_op entry with
  | Some op ->
    check Alcotest.string "hoisted constant first" "arith.constant"
      op.Ircore.op_name;
    check cb "holds the folded value" true
      (Ircore.attr op "value" = Some (Attr.Int (42, Typ.i32)))
  | None -> Alcotest.fail "entry block is empty")

(* ------------------------------------------------------------------ *)
(* sweep parity                                                        *)
(* ------------------------------------------------------------------ *)

(* Same input, same pattern set: the worklist engine and the legacy sweep
   driver must reach the same fixpoint (identical printed IR). *)
let test_worklist_matches_sweep () =
  let build () =
    let md = Builtin.create_module () in
    let f, entry =
      Func.create ~name:"f" ~arg_types:[ Typ.i32 ] ~result_types:[ Typ.i32 ] ()
    in
    Ircore.insert_at_end (Builtin.body_block md) f;
    let rw = Dutil.rw_at_end entry in
    let x = Ircore.block_arg entry 0 in
    let zero = Dutil.const_int rw ~typ:Typ.i32 0 in
    let one = Dutil.const_int rw ~typ:Typ.i32 1 in
    let a = Arith.addi rw x zero in
    let b = Arith.muli rw a one in
    let c20 = Dutil.const_int rw ~typ:Typ.i32 20 in
    let c22 = Dutil.const_int rw ~typ:Typ.i32 22 in
    let s = Arith.addi rw c20 c22 in
    let dead = Arith.muli rw s s in
    ignore dead;
    let r = Arith.addi rw b s in
    Func.return rw ~operands:[ r ] ();
    md
  in
  let patterns = Arith.canonicalization_patterns () in
  let md_new = build () in
  ignore (Dutil.apply_greedy ctx ~patterns md_new);
  let md_old = build () in
  ignore
    (Greedy.apply_sweep ~config:Dutil.greedy_config ctx ~patterns md_old);
  check Alcotest.string "same fixpoint IR"
    (Printer.op_to_string md_old)
    (Printer.op_to_string md_new)

(* ------------------------------------------------------------------ *)
(* non-convergence diagnostic                                          *)
(* ------------------------------------------------------------------ *)

let test_warns_on_max_iterations () =
  let p =
    Pattern.make ~root:"t.spin" ~name:"spin2" (fun rw op ->
        ignore (Rewriter.replace_op_with rw op ~operands:[] "t.spin");
        true)
  in
  let b = Ircore.create_block () in
  Ircore.insert_at_end b (Ircore.create "t.spin");
  let top = Ircore.create ~regions:[ Ircore.region_with_block b ] "t.top" in
  let converged, diags =
    Context.capture_diags ctx (fun () ->
        Greedy.apply
          ~config:
            {
              Greedy.default_config with
              max_iterations = 1;
              fold = false;
              remove_dead = false;
            }
          ctx
          ~patterns:(Frozen_patterns.freeze [ p ])
          top)
  in
  check cb "did not converge" false converged;
  check ci "one diagnostic" 1 (List.length diags);
  let d = List.hd diags in
  check cb "is a warning" true (Diag.severity d = Diag.Warning);
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  check cb "mentions convergence" true (contains (Diag.message d) "converge")

(* ------------------------------------------------------------------ *)
(* pattern registry prefix lookup                                      *)
(* ------------------------------------------------------------------ *)

let test_prefix_requires_separator () =
  Pattern.register_make ~root:"t.x" ~name:"pfx.a" (fun _ _ -> false);
  Pattern.register_make ~root:"t.x" ~name:"pfxtra.b" (fun _ _ -> false);
  let names =
    Pattern.registered_with_prefix "pfx"
    |> List.map (fun p -> p.Pattern.name)
  in
  check (Alcotest.list Alcotest.string) "dot separator required" [ "pfx.a" ]
    names;
  check cb "longer dialect name still found" true
    (List.exists
       (fun p -> p.Pattern.name = "pfxtra.b")
       (Pattern.registered_with_prefix "pfxtra"))

let () =
  Alcotest.run "greedy"
    [
      ( "worklist",
        [
          Alcotest.test_case "sub-quadratic fold attempts" `Quick
            test_subquadratic_attempts;
          Alcotest.test_case "root index skips foreign ops" `Quick
            test_root_index_skips_foreign_ops;
          Alcotest.test_case "push-back revisits users" `Quick
            test_pushback_revisits_users_after_replace;
          Alcotest.test_case "push-back collects dead defs" `Quick
            test_pushback_collects_newly_dead_defs;
        ] );
      ( "folder",
        [
          Alcotest.test_case "constants uniqued and hoisted" `Quick
            test_folder_uniques_constants;
        ] );
      ( "parity",
        [
          Alcotest.test_case "worklist matches sweep" `Quick
            test_worklist_matches_sweep;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "warns at max_iterations" `Quick
            test_warns_on_max_iterations;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "prefix requires separator" `Quick
            test_prefix_requires_separator;
        ] );
    ]
