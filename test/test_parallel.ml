(* Multicore pass manager: function-at-a-time parallel scheduling.

   Four properties, each checked against the sequential schedule:
   - the five Table-1 models lower to byte-identical IR at any job count;
   - diagnostics from per-function failures replay in source order, and
     the reported failure is the first failing function in source order,
     regardless of domain interleaving;
   - a shared budget binds globally: exhaustion on one domain stops the
     whole fan-out with the same diagnostic the sequential run reports;
   - a 64-function canonicalize stress survives the fuzz oracle families
     (print-parse fixpoint, verifier, clone equivalence, differential
     execution) with the pool engaged. *)

open Ir

let check = Alcotest.check
let cb = Alcotest.bool
let cs = Alcotest.string
let ci = Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* every test restores the sequential default, whatever happens *)
let with_jobs n f =
  let saved = Pool.jobs () in
  Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) f

(* pass registration is a side effect of building the full context *)
let () = ignore (Transform.Register.full_context ())

let lowering_passes () =
  match Passes.Pass.parse_pipeline Workloads.Models.tosa_pipeline_str with
  | Ok ps -> ps
  | Error d -> Alcotest.fail (Diag.to_string d)

(* ------------------------------------------------------------------ *)
(* parallel vs sequential: byte-identical IR on the Table-1 models      *)
(* ------------------------------------------------------------------ *)

let test_models_ir_equal () =
  let passes = lowering_passes () in
  List.iter
    (fun spec ->
      let run jobs =
        let ctx = Transform.Register.full_context () in
        let md = Workloads.Models.build ~funcs:8 spec in
        with_jobs jobs (fun () ->
            match
              Passes.Pass.run_pipeline ~verify_each:true ctx passes md
            with
            | Ok _ -> Printer.op_to_string md
            | Error d -> Alcotest.fail (Diag.to_string d))
      in
      let seq = run 1 and par = run 4 in
      check cs
        (Fmt.str "%s: jobs=4 output = jobs=1 output"
           spec.Workloads.Models.sp_name)
        seq par)
    Workloads.Models.paper_models

(* splitting the op budget across functions must conserve the op count *)
let test_multi_func_op_count () =
  List.iter
    (fun spec ->
      List.iter
        (fun funcs ->
          let md = Workloads.Models.build ~funcs spec in
          check ci
            (Fmt.str "%s at %d funcs" spec.Workloads.Models.sp_name funcs)
            spec.Workloads.Models.sp_ops
            (Workloads.Models.count_ops md))
        [ 1; 3; 8 ])
    Workloads.Models.paper_models

(* ------------------------------------------------------------------ *)
(* deterministic diagnostics under induced per-function failures        *)
(* ------------------------------------------------------------------ *)

(* a function-parallel pass that reports every function it visits and
   fails on those whose symbol name [fails] selects *)
let visiting_pass ~fails =
  Passes.Pass.make ~name:"test-visit" ~function_parallel:true
    (fun ctx op ->
      let visit f =
        let name = Dialects.Func.name f in
        Diag.emit (Context.diag_engine ctx)
          (Diag.remark "visited %s" name);
        if fails name then Error (Diag.error "induced failure in %s" name)
        else Ok ()
      in
      (* sequential runs hand the pass the whole module; parallel runs
         hand it one function at a time *)
      if op.Ircore.op_name = "func.func" then visit op
      else
        List.fold_left
          (fun acc f -> if Result.is_error acc then acc else visit f)
          (Ok ())
          (Symbol.collect_ops ~op_name:"func.func" op))

let eight_funcs () =
  Workloads.Models.build ~funcs:8
    {
      Workloads.Models.sp_name = "m";
      sp_ops = 24;
      sp_style = Workloads.Models.Transformer;
    }

let run_with_captured_diags jobs pass md =
  let ctx = Transform.Register.full_context () in
  let seen = ref [] in
  Diag.push_handler (Context.diag_engine ctx) (fun d ->
      seen := Diag.message d :: !seen);
  let r =
    with_jobs jobs (fun () -> Passes.Pass.run_pipeline ctx [ pass ] md)
  in
  (r, List.rev !seen)

let test_deterministic_diags () =
  (* functions m_2 and m_5 fail; every function reports a visit remark *)
  let fails n = n = "m_2" || n = "m_5" in
  let pass = visiting_pass ~fails in
  let seq_r, seq_diags = run_with_captured_diags 1 pass (eight_funcs ()) in
  let par_r, par_diags = run_with_captured_diags 4 pass (eight_funcs ()) in
  (match (seq_r, par_r) with
  | Error ds, Error dp ->
    check cs "same failure diagnostic" (Diag.to_string ds) (Diag.to_string dp);
    check cb "first failing function in source order (m_2)" true
      (contains (Diag.message dp) "m_2")
  | _ -> Alcotest.fail "both schedules must fail");
  (* the parallel replay is source-ordered: identical to sequential up to
     the point the sequential schedule stopped (it short-circuits at the
     first failure; the parallel one runs every function and reports the
     first failure in source order) *)
  check
    Alcotest.(list string)
    "sequential diag prefix preserved" seq_diags
    (List.filteri (fun i _ -> i < List.length seq_diags) par_diags);
  (* parallel visits everything, in source order *)
  check
    Alcotest.(list string)
    "parallel visit order is source order"
    [ "visited m_0"; "visited m_1"; "visited m_2"; "visited m_3";
      "visited m_4"; "visited m_5"; "visited m_6"; "visited m_7" ]
    par_diags;
  (* and the merge is reproducible run-to-run *)
  let _, par_diags' = run_with_captured_diags 4 pass (eight_funcs ()) in
  check Alcotest.(list string) "replay is reproducible" par_diags par_diags'

(* ------------------------------------------------------------------ *)
(* shared budget: exhaustion on one domain stops all workers            *)
(* ------------------------------------------------------------------ *)

let stepping_pass =
  Passes.Pass.make ~name:"test-step" ~function_parallel:true
    (fun _ctx op ->
      let steps = if op.Ircore.op_name = "func.func" then 10 else 80 in
      let rec go i =
        if i = 0 then Ok ()
        else
          match Budget.step () with
          | Some reason -> Error (Diag.error "stopped: %s" reason)
          | None -> go (i - 1)
      in
      go steps)

let test_shared_budget_exhaustion () =
  let run jobs =
    let ctx = Transform.Register.full_context () in
    let md = eight_funcs () in
    let b = Budget.create ~max_steps:25 () in
    let r =
      with_jobs jobs (fun () ->
          Budget.with_budget b (fun () ->
              Passes.Pass.run_pipeline ctx [ stepping_pass ] md))
    in
    (r, Budget.steps b)
  in
  let seq_r, _ = run 1 in
  let par_r, par_steps = run 4 in
  (match (seq_r, par_r) with
  | Error _, Error d ->
    check cb "budget exhaustion reported" true
      (contains (Diag.to_string d) "step budget")
  | _ -> Alcotest.fail "both schedules must exhaust the budget");
  (* the counter is shared: 8 functions x 10 steps each would be 80, but
     every worker observes the same atomic exhaustion and stops early at
     its next charge. Workers already past the check may each charge at
     most their remaining steps, so the total stays well under 80. *)
  check cb
    (Fmt.str "workers stopped early (%d steps charged)" par_steps)
    true (par_steps < 80)

(* ------------------------------------------------------------------ *)
(* canonicalize stress: 64 functions, jobs=4, fuzz oracle families      *)
(* ------------------------------------------------------------------ *)

(* a trivially executable [main] so the fuzz differential oracle has an
   entry point alongside the 64 generated functions *)
let add_main md =
  let open Dialects in
  let f, entry =
    Func.create ~name:"main" ~arg_types:[] ~result_types:[ Typ.i64 ] ()
  in
  Ircore.insert_at_end (Builtin.body_block md) f;
  let rw = Dutil.rw_at_end entry in
  let a = Dutil.const_int rw ~typ:Typ.i64 20 in
  let b = Dutil.const_int rw ~typ:Typ.i64 22 in
  let s = Arith.binop rw "addi" a b in
  Func.return rw ~operands:[ s ] ()

let test_canonicalize_stress_64 () =
  let spec =
    { Workloads.Models.sp_name = "stress"; sp_ops = 640;
      sp_style = Workloads.Models.Transformer }
  in
  let stress () =
    let md = Workloads.Models.build ~funcs:64 spec in
    add_main md;
    md
  in
  let ctx = Transform.Register.full_context () in
  (* byte-identical canonicalization at both degrees *)
  let canon jobs =
    let md = stress () in
    with_jobs jobs (fun () ->
        match
          Passes.Pass.run_pipeline ~verify_each:true ctx
            [ Passes.Pass.lookup_exn "canonicalize" ] md
        with
        | Ok _ -> Printer.op_to_string md
        | Error d -> Alcotest.fail (Diag.to_string d))
  in
  check cs "64-func canonicalize, jobs=4 = jobs=1" (canon 1) (canon 4);
  (* the fuzz oracle families (print-parse fixpoint, verifier, clone
     equivalence, differential execution of [main]) hold with the pool
     engaged *)
  with_jobs 4 (fun () ->
      match Fuzz.Oracle.run_all ctx ~pipelines:[ "canonicalize" ] (stress ())
      with
      | Ok () -> ()
      | Error f -> Alcotest.failf "oracle failed: %a" Fuzz.Oracle.pp_failure f)

(* ------------------------------------------------------------------ *)
(* parallel fuzz campaigns match sequential ones                        *)
(* ------------------------------------------------------------------ *)

let test_fuzz_campaign_parity () =
  let campaign jobs =
    let ctx = Transform.Register.full_context () in
    let order = ref [] in
    let stats =
      with_jobs jobs (fun () ->
          Fuzz.Driver.run ~shrink:false
            ~on_case:(fun i ~failed -> order := (i, failed) :: !order)
            ~pipelines:[ "canonicalize,cse" ] ctx ~seed:11 ~cases:12 ())
    in
    (stats, List.rev !order)
  in
  let seq, seq_order = campaign 1 in
  let par, par_order = campaign 4 in
  check ci "same case count" seq.Fuzz.Driver.s_cases par.Fuzz.Driver.s_cases;
  check ci "same failure count"
    (List.length seq.Fuzz.Driver.s_failures)
    (List.length par.Fuzz.Driver.s_failures);
  check
    Alcotest.(list (pair int bool))
    "case order and verdicts identical" seq_order par_order

(* ------------------------------------------------------------------ *)
(* incremental verification only re-walks touched functions             *)
(* ------------------------------------------------------------------ *)

let test_incremental_verify () =
  let value c =
    match Stats.find_counter ~component:"pass" c with
    | Some c -> Stats.value c
    | None -> 0
  in
  let ctx = Transform.Register.full_context () in
  let md = eight_funcs () in
  let before = value "incremental_verifies" in
  (match
     Passes.Pass.run_pipeline ~verify_each:true ctx
       [ Passes.Pass.lookup_exn "canonicalize" ] md
   with
  | Ok _ -> ()
  | Error d -> Alcotest.fail (Diag.to_string d));
  check cb "incremental verifier engaged" true
    (value "incremental_verifies" > before)

let () =
  Alcotest.run "parallel"
    [
      ( "scheduling",
        [
          Alcotest.test_case "models-ir-equal" `Quick test_models_ir_equal;
          Alcotest.test_case "multi-func-op-count" `Quick
            test_multi_func_op_count;
          Alcotest.test_case "incremental-verify" `Quick
            test_incremental_verify;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "diag-order" `Quick test_deterministic_diags;
          Alcotest.test_case "fuzz-campaign-parity" `Quick
            test_fuzz_campaign_parity;
        ] );
      ( "budget",
        [
          Alcotest.test_case "shared-exhaustion" `Quick
            test_shared_budget_exhaustion;
        ] );
      ( "stress",
        [
          Alcotest.test_case "canonicalize-64-funcs" `Quick
            test_canonicalize_stress_64;
        ] );
    ]
