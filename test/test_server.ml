(* otd_server: the trust boundary under attack.

   Four layers, outermost in:
   - framing: truncated prefixes and bodies, oversized and negative
     length prefixes, mid-frame disconnects — each must degrade into a
     structured error response or a clean close, never a daemon death;
   - the protocol schema: strict UTF-8 validation (overlongs, surrogates,
     out-of-range sequences), request parsing, response validation;
   - the engine: budget clamping against policy, the single-flight result
     cache (hit/join/abandon/eviction);
   - the cell: every failure class a job can produce, with reproducers. *)

open Ir

let check = Alcotest.check
let cb = Alcotest.bool
let cs = Alcotest.string
let ci = Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* pass/transform registration is a side effect of the full context *)
let () = ignore (Transform.Register.full_context ())

(* the daemon's best-effort writes can land on sockets the test already
   closed; without this the resulting SIGPIPE kills the whole test binary *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let payload_text =
  {|"builtin.module"() ({
  "func.func"() ({
  ^bb0(%a: i64):
    %c1 = "arith.constant"() {value = 1 : i64} : () -> i64
    %s = "arith.addi"(%a, %c1) : (i64, i64) -> i64
    "func.return"(%s) : (i64) -> ()
  }) {sym_name = "t", function_type = (i64) -> i64} : () -> ()
}) : () -> ()|}

(* a fold chain that needs well over one budget charge to canonicalize;
   greedy exhaustion only fails at the next pass boundary's checkpoint,
   hence the two-pass pipeline wherever this payload is used *)
let buster_text =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "\"builtin.module\"() ({\n  \"func.func\"() ({\n  ^bb0:\n";
  Buffer.add_string b
    "    %v0 = \"arith.constant\"() {value = 1 : i64} : () -> i64\n";
  for i = 1 to 4 do
    Buffer.add_string b
      (Fmt.str
         "    %%v%d = \"arith.addi\"(%%v%d, %%v%d) : (i64, i64) -> i64\n" i
         (i - 1) (i - 1))
  done;
  Buffer.add_string b "    \"func.return\"(%v4) : (i64) -> ()\n";
  Buffer.add_string b
    "  }) {sym_name = \"buster\", function_type = () -> i64} : () -> ()\n\
     }) : () -> ()";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* framing: read_frame vs every way a peer can mangle a frame           *)
(* ------------------------------------------------------------------ *)

(* run the reader on a socketpair fed by [feed]; the writer closes its
   end when done, so truncation tests see a real EOF *)
let with_frame feed read =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      feed a;
      Unix.close a;
      read b)

let send_bytes fd s =
  let b = Bytes.of_string s in
  ignore (Unix.write fd b 0 (Bytes.length b))

let test_frame_roundtrip () =
  let body = {|{"kind":"ping"}|} in
  let got =
    with_frame
      (fun fd -> Server.Protocol.write_frame fd body)
      Server.Protocol.read_frame
  in
  match got with
  | Ok s -> check cs "round-trips" body s
  | Error e -> Alcotest.fail (Server.Protocol.frame_error_message e)

let test_frame_clean_eof () =
  match with_frame (fun _ -> ()) Server.Protocol.read_frame with
  | Error Server.Protocol.Closed -> ()
  | _ -> Alcotest.fail "EOF on a frame boundary must be Closed"

let test_frame_truncated_prefix () =
  match
    with_frame (fun fd -> send_bytes fd "\x00\x00") Server.Protocol.read_frame
  with
  | Error (Server.Protocol.Truncated (got, want)) ->
    check ci "got" 2 got;
    check ci "want" 4 want
  | _ -> Alcotest.fail "2-byte prefix then EOF must be Truncated"

let test_frame_truncated_body () =
  (* declares 64 bytes, delivers 5, hangs up: a mid-frame disconnect *)
  match
    with_frame
      (fun fd -> send_bytes fd "\x00\x00\x00\x40hello")
      Server.Protocol.read_frame
  with
  | Error (Server.Protocol.Truncated (got, want)) ->
    check ci "got" 5 got;
    check ci "want" 64 want
  | _ -> Alcotest.fail "partial body then EOF must be Truncated"

let test_frame_oversized () =
  match
    with_frame
      (fun fd -> send_bytes fd "\x7f\xff\xff\xff")
      (Server.Protocol.read_frame ~max_frame:1024)
  with
  | Error (Server.Protocol.Oversized n) -> check ci "length" 0x7fffffff n
  | _ -> Alcotest.fail "over-limit prefix must be Oversized"

let test_frame_negative () =
  match
    with_frame
      (fun fd -> send_bytes fd "\xff\xff\xff\xff")
      Server.Protocol.read_frame
  with
  | Error (Server.Protocol.Negative _) -> ()
  | _ -> Alcotest.fail "sign-bit prefix must be Negative"

(* ------------------------------------------------------------------ *)
(* utf8_valid: the byte-level trust boundary                            *)
(* ------------------------------------------------------------------ *)

let test_utf8 () =
  let valid = Server.Protocol.utf8_valid in
  check cb "ascii" true (valid "hello {\"a\":1}");
  check cb "empty" true (valid "");
  check cb "2-byte (é)" true (valid "caf\xc3\xa9");
  check cb "3-byte (€)" true (valid "\xe2\x82\xac");
  check cb "4-byte (emoji)" true (valid "\xf0\x9f\x98\x80");
  check cb "bare continuation" false (valid "\x80");
  check cb "truncated 2-byte" false (valid "\xc3");
  check cb "truncated 3-byte" false (valid "\xe2\x82");
  check cb "overlong C0" false (valid "\xc0\xaf");
  check cb "overlong C1" false (valid "\xc1\xbf");
  check cb "overlong E0" false (valid "\xe0\x80\xaf");
  check cb "E0 A0 boundary ok" true (valid "\xe0\xa0\x80");
  check cb "surrogate ED A0" false (valid "\xed\xa0\x80");
  check cb "ED 9F boundary ok" true (valid "\xed\x9f\xbf");
  check cb "overlong F0" false (valid "\xf0\x80\x80\x80");
  check cb "F4 90 out of range" false (valid "\xf4\x90\x80\x80");
  check cb "F4 8F boundary ok" true (valid "\xf4\x8f\xbf\xbf");
  check cb "FE invalid" false (valid "\xfe");
  check cb "raw latin-1 in json" false (valid "{\"msg\":\"caf\xe9\"}")

(* ------------------------------------------------------------------ *)
(* request parsing and response validation                              *)
(* ------------------------------------------------------------------ *)

let parse s =
  match Json.parse s with
  | Ok j -> j
  | Error e -> Alcotest.fail ("test json does not parse: " ^ e)

let test_parse_request () =
  let req s = Server.Protocol.parse_request (parse s) in
  (match req {|{"kind":"ping","id":"x"}|} with
  | Ok (Server.Protocol.Ping (Some "x")) -> ()
  | _ -> Alcotest.fail "ping with id");
  (match req {|{"kind":"stats"}|} with
  | Ok Server.Protocol.Stats -> ()
  | _ -> Alcotest.fail "stats");
  (match req {|{"kind":"shutdown"}|} with
  | Ok Server.Protocol.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown");
  (match
     req
       {|{"kind":"compile","payload":"m","pipeline":"cse",
          "budget":{"max_rewrites":7},"retry":{"attempts":3},"cache":false}|}
   with
  | Ok (Server.Protocol.Compile c) ->
    check cs "payload" "m" c.Server.Protocol.c_payload;
    check ci "attempts" 3 c.Server.Protocol.c_attempts;
    check cb "cache" false c.Server.Protocol.c_cache;
    check ci "max_rewrites" 7
      (Option.get c.Server.Protocol.c_budget.Server.Protocol.br_max_rewrites)
  | _ -> Alcotest.fail "full compile request");
  let expect_err s frag =
    match req s with
    | Error e ->
      check cb (Fmt.str "%S mentions %S" s frag) true (contains e frag)
    | Ok _ -> Alcotest.fail (Fmt.str "%s must be rejected" s)
  in
  expect_err {|{"id":"x"}|} "kind";
  expect_err {|{"kind":"frobnicate"}|} "unknown request kind";
  expect_err {|{"kind":"compile"}|} "payload";
  expect_err {|{"kind":"compile","payload":7}|} "wrong type";
  expect_err {|{"kind":"compile","payload":"m","budget":3}|} "budget";
  expect_err
    {|{"kind":"compile","payload":"m","budget":{"max_steps":-1}}|}
    ">= 0";
  expect_err
    {|{"kind":"compile","payload":"m","retry":{"attempts":0}}|}
    ">= 1";
  match Server.Protocol.parse_request (Json.String "hi") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-object request must be rejected"

let test_validate_response () =
  let ok j =
    match Server.Protocol.validate_response_json j with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("response must validate: " ^ e)
  in
  let bad s =
    match Server.Protocol.validate_response_json (parse s) with
    | Error _ -> ()
    | Ok () -> Alcotest.fail (s ^ " must not validate")
  in
  let fps =
    {
      Server.Protocol.fp_payload = 42;
      fp_script = None;
      fp_pipeline = Some 7;
    }
  in
  ok (Server.Protocol.ok_core ~fps ~output:"m" ());
  ok
    (Server.Protocol.error_core ~cls:Server.Protocol.Budget
       ~reproducer:"_artifacts/x.mlir" "out of fuel");
  ok (Server.Protocol.shed_core ~retry_after_ms:50);
  ok (Server.Protocol.invalid_response ~id:"x" "bad frame");
  ok (Server.Protocol.pong_response ());
  bad {|{"status":"ok"}|};
  bad {|{"status":"error"}|};
  bad {|{"status":"error","error":{"class":"sparkly","message":"m"}}|};
  bad {|{"status":"shed"}|};
  bad {|{"status":"weird"}|};
  bad {|{"attempts":1}|};
  (* validate_json dispatches on kind vs status *)
  (match Server.Protocol.validate_json (parse {|{"kind":"ping"}|}) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Server.Protocol.validate_json (parse {|{"a":1}|}) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "kindless statusless object must be rejected"

(* ------------------------------------------------------------------ *)
(* result cache: single flight, abandon, eviction                       *)
(* ------------------------------------------------------------------ *)

let test_rcache_single_flight () =
  let c = Server.Rcache.create ~capacity:8 () in
  (match Server.Rcache.find_or_lease c 1 with
  | `Lease -> ()
  | `Hit _ -> Alcotest.fail "empty cache cannot hit");
  (* a second requester for the same key must block until fulfill *)
  let d =
    Domain.spawn (fun () ->
        match Server.Rcache.find_or_lease c 1 with
        | `Hit v -> v
        | `Lease -> Json.Null)
  in
  Unix.sleepf 0.05;
  Server.Rcache.fulfill c 1 (Json.String "answer");
  (match Domain.join d with
  | Json.String "answer" -> ()
  | _ -> Alcotest.fail "joined waiter must observe the fulfilled value");
  match Server.Rcache.find_or_lease c 1 with
  | `Hit (Json.String "answer") -> ()
  | _ -> Alcotest.fail "fulfilled entry must hit"

let test_rcache_abandon () =
  let c = Server.Rcache.create ~capacity:8 () in
  (match Server.Rcache.find_or_lease c 5 with
  | `Lease -> ()
  | `Hit _ -> Alcotest.fail "empty cache cannot hit");
  let d =
    Domain.spawn (fun () ->
        match Server.Rcache.find_or_lease c 5 with
        | `Hit _ -> `Hit
        | `Lease -> `Lease)
  in
  Unix.sleepf 0.05;
  (* shed/reject path: the lease holder walks away; the waiter takes over *)
  Server.Rcache.abandon c 5;
  (match Domain.join d with
  | `Lease -> ()
  | `Hit -> Alcotest.fail "abandoned lease must hand the waiter a new lease");
  Server.Rcache.fulfill c 5 (Json.Bool true);
  match Server.Rcache.find_or_lease c 5 with
  | `Hit (Json.Bool true) -> ()
  | _ -> Alcotest.fail "second lease holder's value must land"

let test_rcache_eviction () =
  let c = Server.Rcache.create ~capacity:2 () in
  List.iter
    (fun k ->
      (match Server.Rcache.find_or_lease c k with
      | `Lease -> ()
      | `Hit _ -> Alcotest.fail "fresh key cannot hit");
      Server.Rcache.fulfill c k (Json.Int k))
    [ 1; 2; 3 ];
  check cb "size bounded" true (Server.Rcache.size c <= 2);
  match Server.Rcache.find_or_lease c 3 with
  | `Hit (Json.Int 3) -> ()
  | _ -> Alcotest.fail "the entry that triggered eviction must survive"

(* ------------------------------------------------------------------ *)
(* engine: policy clamping                                              *)
(* ------------------------------------------------------------------ *)

let compile_of_budget ?max_steps ?max_rewrites ?deadline_ms () =
  {
    Server.Protocol.c_id = None;
    c_payload = "m";
    c_script = None;
    c_pipeline = None;
    c_budget =
      {
        Server.Protocol.br_max_steps = max_steps;
        br_max_rewrites = max_rewrites;
        br_deadline_ms = deadline_ms;
      };
    c_attempts = 1;
    c_cache = true;
  }

let test_engine_clamping () =
  let p =
    {
      Server.Engine.default_policy with
      Server.Engine.p_default_max_steps = Some 100;
      p_clamp_max_steps = Some 1000;
      p_clamp_max_rewrites = Some 50;
      p_clamp_deadline_ms = None;
    }
  in
  let job c = Server.Engine.effective_job p c in
  (* request under the ceiling passes through *)
  let j = job (compile_of_budget ~max_steps:7 ()) in
  check ci "under ceiling" 7 (Option.get j.Server.Cell.jb_max_steps);
  (* request over the ceiling is clamped *)
  let j = job (compile_of_budget ~max_steps:10_000 ()) in
  check ci "over ceiling" 1000 (Option.get j.Server.Cell.jb_max_steps);
  (* a silent request gets the policy default *)
  let j = job (compile_of_budget ()) in
  check ci "default applied" 100 (Option.get j.Server.Cell.jb_max_steps);
  (* an unlimited request under a ceiling gets the ceiling itself *)
  check ci "unlimited gets ceiling" 50
    (Option.get j.Server.Cell.jb_max_rewrites);
  (* no default and no ceiling stays unlimited *)
  check cb "unlimited stays unlimited" true
    (j.Server.Cell.jb_deadline_ms = None)

(* ------------------------------------------------------------------ *)
(* cell: one outcome per failure class                                  *)
(* ------------------------------------------------------------------ *)

let run_cell ?reproducer_dir ?pipeline ?script ?max_rewrites payload =
  Server.Cell.run ?reproducer_dir
    {
      Server.Cell.jb_payload = payload;
      jb_script = script;
      jb_pipeline = pipeline;
      jb_max_steps = None;
      jb_max_rewrites = max_rewrites;
      jb_deadline_ms = None;
    }

let expect_class name cls (o : Server.Cell.outcome) =
  match o.Server.Cell.oc_result with
  | Error (c, _) ->
    check cs name
      (Server.Protocol.class_to_string cls)
      (Server.Protocol.class_to_string c)
  | Ok _ -> Alcotest.fail (name ^ ": expected an error outcome")

let test_cell_outcomes () =
  (* success: output is printed, fingerprints are available *)
  (match run_cell ~pipeline:"canonicalize" payload_text with
  | { Server.Cell.oc_result = Ok out; oc_fps = Some _; _ } ->
    check cb "output parses back" true
      (Result.is_ok (Parser.parse_module out))
  | _ -> Alcotest.fail "valid job must succeed with fingerprints");
  expect_class "parse" Server.Protocol.Parse (run_cell "not mlir at all");
  expect_class "script parse" Server.Protocol.Parse
    (run_cell ~script:"also not mlir" payload_text);
  expect_class "pipeline" Server.Protocol.Pipeline
    (run_cell ~pipeline:"no-such-pass" payload_text);
  expect_class "budget" Server.Protocol.Budget
    (run_cell ~pipeline:"canonicalize,cse" ~max_rewrites:1 buster_text)

let test_cell_reproducer () =
  let dir = Filename.concat "_artifacts" "test-server-reproducers" in
  let o =
    run_cell ~reproducer_dir:dir ~pipeline:"canonicalize,cse" ~max_rewrites:1
      buster_text
  in
  expect_class "contained" Server.Protocol.Budget o;
  match o.Server.Cell.oc_reproducer with
  | Some path ->
    check cb "reproducer exists" true (Sys.file_exists path);
    let ic = open_in path in
    let line = input_line ic in
    close_in ic;
    check cb "replayable header" true (contains line "reproducer")
  | None -> Alcotest.fail "contained failure must write a reproducer"

(* ------------------------------------------------------------------ *)
(* the daemon under transport faults: alive after every mangled frame   *)
(* ------------------------------------------------------------------ *)

let with_daemon f =
  let policy =
    { Server.Engine.default_policy with Server.Engine.p_backoff_ms = 0 }
  in
  let engine = Server.Engine.create ~policy () in
  let path = Fmt.str "test-server-%d.sock" (Unix.getpid ()) in
  let listener = Server.Transport.serve_unix engine ~path ~conns:2 in
  Fun.protect
    ~finally:(fun () ->
      Server.Transport.stop_listener listener;
      Server.Engine.close engine)
    (fun () -> f path)

let status_of j =
  match Option.bind (Json.member "status" j) Json.to_string_opt with
  | Some s -> s
  | None -> "?"

let assert_alive name path =
  match Server.Transport.rpc_once path (parse {|{"kind":"ping"}|}) with
  | Ok j -> check cs (name ^ ": daemon answers ping") "ok" (status_of j)
  | Error e -> Alcotest.fail (name ^ ": daemon dead after fault: " ^ e)

(* send raw bytes, optionally read one response, close, then prove the
   daemon still serves a fresh connection *)
let poke ~name ~expect_response path bytes =
  let fd = Server.Transport.connect_retry path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Server.Transport.send_raw fd bytes;
      if expect_response then begin
        match Server.Transport.recv_response fd with
        | Ok j -> check cs (name ^ ": structured error") "invalid" (status_of j)
        | Error e -> Alcotest.fail (name ^ ": expected a response, got: " ^ e)
      end
      else
        (* mid-frame disconnect: just hang up; any best-effort error the
           server writes back lands on a closed socket *)
        ());
  assert_alive name path

let frame body =
  let len = String.length body in
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string body 0 b 4 len;
  Bytes.to_string b

let test_daemon_survives_mangled_frames () =
  with_daemon (fun path ->
      poke ~name:"truncated-prefix" ~expect_response:false path "\x00\x00";
      poke ~name:"mid-frame-disconnect" ~expect_response:false path
        "\x00\x00\x00\x40hello";
      poke ~name:"oversized-prefix" ~expect_response:true path
        "\x7f\xff\xff\xff";
      poke ~name:"negative-prefix" ~expect_response:true path
        "\xff\xff\xff\xff";
      poke ~name:"invalid-utf8" ~expect_response:true path
        (frame "{\"kind\":\"\xc0\xaf\"}");
      poke ~name:"broken-json" ~expect_response:true path
        (frame "{\"kind\": ");
      poke ~name:"schema-violation" ~expect_response:true path
        (frame {|{"kind":"frobnicate"}|}))

let test_daemon_recovers_on_same_connection () =
  (* in-band faults (valid frames, bad content) must not kill the
     connection: the next request on the same socket is served *)
  with_daemon (fun path ->
      let fd = Server.Transport.connect_retry path in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Server.Transport.send_raw fd (frame "]]] not json [[[");
          (match Server.Transport.recv_response fd with
          | Ok j -> check cs "bad json -> invalid" "invalid" (status_of j)
          | Error e -> Alcotest.fail ("no response to bad json: " ^ e));
          match Server.Transport.rpc fd (parse {|{"kind":"ping"}|}) with
          | Ok j -> check cs "same conn still serves" "ok" (status_of j)
          | Error e -> Alcotest.fail ("connection dead after fault: " ^ e)))

let test_daemon_compiles_end_to_end () =
  with_daemon (fun path ->
      let req =
        Json.Obj
          [
            ("kind", Json.String "compile");
            ("id", Json.String "e2e");
            ("payload", Json.String payload_text);
            ("pipeline", Json.String "canonicalize");
          ]
      in
      match Server.Transport.rpc_once path req with
      | Ok j ->
        check cs "status" "ok" (status_of j);
        check cs "id echoed" "e2e"
          (Option.value ~default:"?"
             (Option.bind (Json.member "id" j) Json.to_string_opt));
        check cb "output present" true (Json.member "output" j <> None);
        check cb "response validates" true
          (Result.is_ok (Server.Protocol.validate_response_json j))
      | Error e -> Alcotest.fail ("compile rpc failed: " ^ e))

let () =
  Alcotest.run "server"
    [
      ( "framing",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "clean-eof" `Quick test_frame_clean_eof;
          Alcotest.test_case "truncated-prefix" `Quick
            test_frame_truncated_prefix;
          Alcotest.test_case "truncated-body" `Quick test_frame_truncated_body;
          Alcotest.test_case "oversized" `Quick test_frame_oversized;
          Alcotest.test_case "negative" `Quick test_frame_negative;
        ] );
      ("utf8", [ Alcotest.test_case "boundary-cases" `Quick test_utf8 ]);
      ( "schema",
        [
          Alcotest.test_case "parse-request" `Quick test_parse_request;
          Alcotest.test_case "validate-response" `Quick test_validate_response;
        ] );
      ( "rcache",
        [
          Alcotest.test_case "single-flight" `Quick test_rcache_single_flight;
          Alcotest.test_case "abandon" `Quick test_rcache_abandon;
          Alcotest.test_case "eviction" `Quick test_rcache_eviction;
        ] );
      ( "engine",
        [ Alcotest.test_case "budget-clamping" `Quick test_engine_clamping ] );
      ( "cell",
        [
          Alcotest.test_case "outcomes" `Quick test_cell_outcomes;
          Alcotest.test_case "reproducer" `Quick test_cell_reproducer;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "survives-mangled-frames" `Quick
            test_daemon_survives_mangled_frames;
          Alcotest.test_case "recovers-on-same-connection" `Quick
            test_daemon_recovers_on_same_connection;
          Alcotest.test_case "compiles-end-to-end" `Quick
            test_daemon_compiles_end_to_end;
        ] );
    ]
