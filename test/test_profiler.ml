(* Tests for the observability layer: the trace-event profiler (span
   nesting, balance, monotonic timestamps, Chrome JSON export), the global
   statistics registry (greedy-driver migration, reset), and the
   optimization-remarks engine (payload locations, filtering). *)

open Ir
open Testutil

let payload_path name =
  Filename.concat ".."
    (Filename.concat "examples" (Filename.concat "scripts" name))

let event_ts = function
  | Profiler.Begin { b_ts; _ } -> b_ts
  | Profiler.End { e_ts } -> e_ts
  | Profiler.Counter { c_ts; _ } -> c_ts

let begin_names p =
  List.filter_map
    (function Profiler.Begin { b_name; _ } -> Some b_name | _ -> None)
    (Profiler.events p)

(* ---------------- spans ---------------- *)

let test_nesting_and_balance () =
  let p = Profiler.create () in
  Profiler.with_profiler p (fun () ->
      Profiler.span "outer" (fun () ->
          Profiler.span "inner-1" (fun () -> ());
          Profiler.span "inner-2" (fun () ->
              Profiler.span "leaf" (fun () -> ()))));
  check cb "balanced" true (Profiler.balanced p);
  check ci "span count" 4 (Profiler.span_count p);
  check ci "max depth" 3 (Profiler.max_depth p);
  check
    Alcotest.(list string)
    "begin order" [ "outer"; "inner-1"; "inner-2"; "leaf" ] (begin_names p);
  (* depth never goes negative and ends at zero *)
  let final_depth =
    List.fold_left
      (fun d e ->
        let d' =
          match e with
          | Profiler.Begin _ -> d + 1
          | Profiler.End _ -> d - 1
          | Profiler.Counter _ -> d
        in
        check cb "depth non-negative" true (d' >= 0);
        d')
      0 (Profiler.events p)
  in
  check ci "stream closes all spans" 0 final_depth

let test_exception_safety () =
  let p = Profiler.create () in
  (try
     Profiler.with_profiler p (fun () ->
         Profiler.span "outer" (fun () ->
             Profiler.span "boom" (fun () -> failwith "boom")))
   with Failure _ -> ());
  check cb "balanced after exception" true (Profiler.balanced p);
  check ci "both spans closed" 2 (Profiler.span_count p);
  check cb "no ambient profiler leaks" false (Profiler.profiling ())

let test_disabled_noop () =
  check cb "no ambient profiler" false (Profiler.profiling ());
  let r = Profiler.span "ignored" (fun () -> 41 + 1) in
  check ci "span is transparent" 42 r;
  Profiler.counter "ignored" 1.0

let test_monotonic_timestamps () =
  let p = Profiler.create () in
  Profiler.with_profiler p (fun () ->
      for i = 1 to 50 do
        Profiler.span "tick" (fun () ->
            Profiler.counter "i" (float_of_int i))
      done);
  let rec go prev = function
    | [] -> ()
    | e :: rest ->
      let t = event_ts e in
      check cb "timestamps monotonic" true (t >= prev);
      check cb "timestamps non-negative" true (t >= 0.0);
      go t rest
  in
  go 0.0 (Profiler.events p)

(* ---------------- Chrome trace-event JSON ---------------- *)

let test_trace_event_json () =
  let p = Profiler.create () in
  Profiler.with_profiler p (fun () ->
      Profiler.span ~cat:"pass"
        ~args:[ ("n", Profiler.Aint 3); ("tag", Profiler.Astr "x") ]
        "root"
        (fun () ->
          Profiler.counter "worklist" 7.0;
          Profiler.span "child" (fun () -> ())));
  (* serialize, then parse back with the repository's own JSON parser *)
  let text = Json.to_string (Profiler.to_json p) in
  match Json.parse text with
  | Error e -> Alcotest.failf "profile JSON does not parse back: %s" e
  | Ok j ->
    let events =
      match Json.member "traceEvents" j with
      | Some l -> Option.get (Json.to_list l)
      | None -> Alcotest.fail "no traceEvents array"
    in
    check ci "event count" (2 + 2 + 1) (List.length events);
    let phases =
      List.filter_map
        (fun e -> Option.bind (Json.member "ph" e) Json.to_string_opt)
        events
    in
    check
      Alcotest.(list string)
      "phases" [ "B"; "C"; "B"; "E"; "E" ] phases;
    List.iter
      (fun e ->
        check cb "every event has ts" true (Json.member "ts" e <> None);
        check cb "every event has pid" true (Json.member "pid" e <> None);
        check cb "every event has tid" true (Json.member "tid" e <> None))
      events;
    (match events with
    | root :: _ ->
      check cb "begin has name" true
        (Json.member "name" root = Some (Json.String "root"));
      check cb "begin has cat" true
        (Json.member "cat" root = Some (Json.String "pass"));
      let args = Option.get (Json.member "args" root) in
      check cb "args preserved" true
        (Json.member "n" args = Some (Json.Int 3)
        && Json.member "tag" args = Some (Json.String "x"))
    | [] -> Alcotest.fail "no events");
    let other = Option.get (Json.member "otherData" j) in
    check cb "span metadata" true
      (Json.member "spans" other = Some (Json.Int 2))

let test_write_profile () =
  let p = Profiler.create () in
  Profiler.with_profiler p (fun () -> Profiler.span "s" (fun () -> ()));
  let path = Filename.temp_file "otd_profile" ".json" in
  Profiler.write p ~path;
  let parsed = Json.parse (read_file path) in
  Sys.remove path;
  check cb "written file parses" true (Result.is_ok parsed)

(* ---------------- real pipelines and the interpreter ---------------- *)

let test_pipeline_spans () =
  let md = parse_file (payload_path "payload_matmul.mlir") in
  let p = Profiler.create () in
  Profiler.with_profiler p (fun () ->
      match run_pipeline [ "canonicalize"; "cse" ] md with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
  check cb "balanced" true (Profiler.balanced p);
  let names = begin_names p in
  let has n = List.mem n names in
  check cb "pipeline span" true (has "pipeline");
  check cb "canonicalize span" true (has "canonicalize");
  check cb "cse span" true (has "cse");
  check cb "greedy driver span" true (has "greedy.apply");
  (* pipeline > pass > greedy driver *)
  check cb "nested at least 3 deep" true (Profiler.max_depth p >= 3)

let test_interp_spans () =
  let md = parse_file (payload_path "payload_matmul.mlir") in
  let script =
    Transform.Build.script (fun rw root ->
        let loop =
          Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root
        in
        ignore (Transform.Build.loop_tile rw ~sizes:[ 8 ] loop))
  in
  let p = Profiler.create () in
  Profiler.with_profiler p (fun () -> ignore (apply_ok script md));
  check cb "balanced" true (Profiler.balanced p);
  let names = begin_names p in
  check cb "interpreter op spans" true
    (List.mem "transform.match_op" names
    && List.mem "transform.loop_tile" names)

(* ---------------- statistics registry ---------------- *)

let test_greedy_stats () =
  Stats.reset ();
  let md = parse_file (payload_path "payload_matmul.mlir") in
  run_pass "canonicalize" md;
  let v name =
    match Stats.find_counter ~component:"greedy" name with
    | Some c -> Stats.value c
    | None -> Alcotest.failf "greedy/%s not registered" name
  in
  check cb "invocations recorded" true (v "invocations" >= 1);
  check cb "match attempts recorded" true (v "match_attempts" > 0);
  check cb "worklist pushes recorded" true (v "worklist_pushes" > 0);
  let attempts_before = v "match_attempts" in
  run_pass "canonicalize" md;
  check cb "stats accumulate across runs" true
    (v "match_attempts" >= attempts_before);
  Stats.reset ();
  check ci "reset zeroes counters" 0 (v "match_attempts");
  check ci "reset zeroes invocations" 0 (v "invocations")

let test_conversion_stats () =
  Stats.reset ();
  let md = parse_file (payload_path "payload_matmul.mlir") in
  run_pass "convert-scf-to-cf" md;
  match Stats.find_counter ~component:"conversions" "ops_converted" with
  | None -> Alcotest.fail "conversions/ops_converted not registered"
  | Some c -> check cb "conversions counted" true (Stats.value c > 0)

let test_stats_rendering () =
  Stats.reset ();
  let md = parse_file (payload_path "payload_matmul.mlir") in
  run_pass "canonicalize" md;
  let table = Fmt.str "%a" Stats.pp () in
  check cb "table header" true (contains table "component");
  check cb "greedy rows present" true (contains table "match_attempts");
  let j = Stats.to_json () in
  (match Json.parse (Json.to_string j) with
  | Error e -> Alcotest.failf "stats JSON does not parse back: %s" e
  | Ok _ -> ());
  let entries = Option.get (Json.to_list j) in
  check cb "non-empty" true (entries <> []);
  List.iter
    (fun e ->
      check cb "entry has component" true (Json.member "component" e <> None);
      check cb "entry has name" true (Json.member "name" e <> None);
      check cb "entry has kind" true (Json.member "kind" e <> None))
    entries;
  let is_hist e = Json.member "kind" e = Some (Json.String "histogram") in
  check cb "iterations histogram present" true (List.exists is_hist entries)

(* ---------------- optimization remarks ---------------- *)

(* the Case-Study-4 shape: microkernel with a do-nothing fallback *)
let microkernel_script () =
  Transform.Build.script (fun rw root ->
      let loop =
        Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root
      in
      Transform.Build.alternatives rw
        [
          (fun brw -> Transform.Build.to_library brw ~library:"libxsmm" loop);
          (fun _ -> ());
        ])

let test_remarks_passed_and_missed () =
  let run name =
    let md = parse_file (payload_path name) in
    let (), remarks =
      with_captured_remarks (fun () ->
          ignore (apply_ok (microkernel_script ()) md))
    in
    remarks
  in
  (* 24x16x8 fits the microkernel: Passed, located at the payload loop *)
  (match run "payload_matmul.mlir" with
  | [ r ] ->
    check cb "passed kind" true (r.Remark.r_kind = Remark.Passed);
    check Alcotest.string "passed pass name" "loop-to-library" r.Remark.r_pass;
    check cb "passed has payload loc" true (r.Remark.r_loc <> Loc.Unknown);
    check cb "passed loc names the file" true
      (contains (Loc.to_string r.Remark.r_loc) "payload_matmul.mlir")
  | rs -> Alcotest.failf "expected one remark, got %d" (List.length rs));
  (* 96x16x8 exceeds the kernel table: Missed, still located *)
  match run "payload_matmul_large.mlir" with
  | [ r ] ->
    check cb "missed kind" true (r.Remark.r_kind = Remark.Missed);
    check cb "missed has payload loc" true (r.Remark.r_loc <> Loc.Unknown);
    check cb "missed loc names the file" true
      (contains (Loc.to_string r.Remark.r_loc) "payload_matmul_large.mlir");
    check cb "missed says why" true (contains r.Remark.r_message "no kernel")
  | rs -> Alcotest.failf "expected one remark, got %d" (List.length rs)

let test_tile_remark () =
  let md = parse_file (payload_path "payload_matmul.mlir") in
  let script =
    Transform.Build.script (fun rw root ->
        let loop =
          Transform.Build.match_op rw ~select:"first" ~name:"scf.for" root
        in
        ignore (Transform.Build.loop_tile rw ~sizes:[ 8; 8 ] loop))
  in
  let (), remarks =
    with_captured_remarks (fun () -> ignore (apply_ok script md))
  in
  match List.filter (fun r -> r.Remark.r_pass = "loop-tile") remarks with
  | [ r ] ->
    check cb "tile passed" true (r.Remark.r_kind = Remark.Passed);
    check cb "tile loc" true (r.Remark.r_loc <> Loc.Unknown);
    check cb "tile sizes arg" true
      (List.mem_assoc "tile_sizes" r.Remark.r_args)
  | rs -> Alcotest.failf "expected one loop-tile remark, got %d" (List.length rs)

let test_remark_filtering () =
  (match Remark.kinds_of_string "passed,missed" with
  | Ok ks ->
    check cb "two kinds" true (ks = [ Remark.Passed; Remark.Missed ])
  | Error e -> Alcotest.fail e);
  (match Remark.kinds_of_string "all" with
  | Ok ks -> check ci "all = three kinds" 3 (List.length ks)
  | Error e -> Alcotest.fail e);
  (match Remark.kinds_of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus kind accepted"
  | Error _ -> ());
  let mk kind pass msg = Remark.make kind ~pass "%s" msg in
  let rs =
    [
      mk Remark.Passed "loop-tile" "tiled";
      mk Remark.Missed "loop-to-library" "libxsmm has no kernel for 96x16x8";
      mk Remark.Analysis "matcher" "found 3 candidates";
    ]
  in
  check ci "kind filter" 1
    (List.length (Remark.filter ~kinds:[ Remark.Missed ] rs));
  check ci "regex filter on message" 1
    (List.length (Remark.filter ~filter:(Str.regexp "libxsmm") rs));
  check ci "regex filter on pass name" 2
    (List.length (Remark.filter ~filter:(Str.regexp "^loop-") rs));
  check ci "kind+regex compose" 0
    (List.length
       (Remark.filter ~kinds:[ Remark.Passed ] ~filter:(Str.regexp "libxsmm")
          rs))

let test_handler_scoping () =
  check cb "disabled outside" false (Remark.enabled ());
  (* emission without a handler is a silent no-op *)
  Remark.emit (Remark.passed ~pass:"nobody" "dropped");
  let (), remarks =
    with_captured_remarks (fun () ->
        check cb "enabled inside" true (Remark.enabled ());
        Remark.emit (Remark.passed ~pass:"x" "one"))
  in
  check ci "captured exactly the inner emission" 1 (List.length remarks);
  check cb "disabled restored" false (Remark.enabled ())

let () =
  Alcotest.run "profiler"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting-and-balance" `Quick
            test_nesting_and_balance;
          Alcotest.test_case "exception-safety" `Quick test_exception_safety;
          Alcotest.test_case "disabled-noop" `Quick test_disabled_noop;
          Alcotest.test_case "monotonic-timestamps" `Quick
            test_monotonic_timestamps;
        ] );
      ( "json",
        [
          Alcotest.test_case "trace-event-roundtrip" `Quick
            test_trace_event_json;
          Alcotest.test_case "write-profile" `Quick test_write_profile;
        ] );
      ( "integration",
        [
          Alcotest.test_case "pipeline-spans" `Quick test_pipeline_spans;
          Alcotest.test_case "interpreter-spans" `Quick test_interp_spans;
        ] );
      ( "stats",
        [
          Alcotest.test_case "greedy-accumulation" `Quick test_greedy_stats;
          Alcotest.test_case "conversion-counts" `Quick test_conversion_stats;
          Alcotest.test_case "rendering" `Quick test_stats_rendering;
        ] );
      ( "remarks",
        [
          Alcotest.test_case "passed-and-missed-with-locs" `Quick
            test_remarks_passed_and_missed;
          Alcotest.test_case "tile-remark" `Quick test_tile_remark;
          Alcotest.test_case "filtering" `Quick test_remark_filtering;
          Alcotest.test_case "handler-scoping" `Quick test_handler_scoping;
        ] );
    ]
