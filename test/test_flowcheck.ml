(* Static annotation-flow checking (Transform.Flowcheck): the must/may
   lattice over handle annotations, joins across [alternatives] branches,
   the [foreach] fixpoint, include summaries and their cache, interaction
   with the invalidation analysis, and the Schedule gate that makes the
   checker's verdict binding before any payload is touched. The dynamic
   side of every scenario is exercised too: the same Treg clauses feed
   both checkers, so accept/reject decisions must line up. *)

open Ir
open Testutil
module B = Transform.Build
module FC = Transform.Flowcheck

let cs = Alcotest.string

let counter name =
  match Stats.find_counter ~component:"flowcheck" name with
  | Some c -> Stats.value c
  | None -> 0

let annot_config =
  {
    Transform.State.default_config with
    Transform.State.check_annotations = true;
  }

(* the canonical unsound schedule from the issue: vectorize requires
   (tiled & !vectorized), which a freshly matched handle cannot satisfy *)
let vectorize_before_tile () =
  B.script (fun rw root ->
      let l = B.match_op rw ~name:"scf.for" root in
      ignore (B.loop_vectorize rw ~width:4 l))

let tile_then_vectorize () =
  B.script (fun rw root ->
      let l = B.match_op rw ~select:"first" ~name:"scf.for" root in
      (* result 0 is the tile loop, result 1 the unit-step point loop *)
      let _tiles, points = B.loop_tile rw ~sizes:[ 4 ] l in
      ignore (B.loop_vectorize rw ~width:4 points))

(* ---------------- accept / reject basics ---------------- *)

let test_accepts_tile_then_vectorize () =
  let r = FC.check (tile_then_vectorize ()) in
  check cb "accepted" true (FC.ok r)

let test_rejects_vectorize_before_tile () =
  let r = FC.check (vectorize_before_tile ()) in
  check cb "rejected" true (not (FC.ok r));
  let reqs =
    List.filter_map
      (function
        | FC.Unsatisfied_requires _ as p ->
          Some (Fmt.str "%a" FC.pp_problem p)
        | _ -> None)
      r.FC.fr_problems
  in
  check cb "one unsatisfied-requires problem" true (List.length reqs = 1);
  check cb "problem message carries the requirement tag" true
    (List.for_all
       (fun m -> contains m Transform.Annot.requirement_tag)
       reqs)

let test_dynamic_checker_agrees () =
  (* rejected statically -> the dynamic check fires too, as a definite,
     requirement-tagged error, before the payload is touched *)
  let payload = matmul () in
  let before = Printer.op_to_string payload in
  let e =
    apply_err ~config:annot_config (vectorize_before_tile ()) payload
  in
  check cb "definite" true (not (Transform.Terror.is_silenceable e));
  check cb "requirement-tagged" true
    (Transform.Annot.is_requirement_diag (Transform.Terror.diag e));
  check cs "payload untouched" before (Printer.op_to_string payload);
  (* accepted statically -> the dynamic run sees satisfied requirements *)
  ignore (apply_ok ~config:annot_config (tile_then_vectorize ()) (matmul ()))

(* ---------------- alternatives: must-join ---------------- *)

(* a test-only transform that requires the [annot.alt.a] property; both
   checkers read the clause from this one registration *)
let require_alt_a = "test.require_alt_a"

let () =
  Transform.Treg.register ~name:require_alt_a
    ~spec:
      {
        Transform.Treg.default_spec with
        Transform.Treg.summary = "test-only annot.alt.a requirement";
        arity = Some 1;
        requires =
          (fun _ -> [ (0, Irdl.Atom (Transform.Annot.Has "annot.alt.a")) ]);
      }
    (fun _ _ -> Ok ())

let alternatives_script ~second_branch =
  B.script (fun rw root ->
      let l = B.match_op rw ~name:"scf.for" root in
      B.alternatives rw
        [
          (fun brw -> B.annotate brw ~name:"alt.a" l);
          (fun brw -> B.annotate brw ~name:second_branch l);
        ];
      ignore (Ir.Rewriter.build rw ~operands:[ l ] require_alt_a))

let test_alternatives_must_join () =
  (* both branches establish alt.a -> it survives the must-join *)
  check cb "both branches -> accepted" true
    (FC.ok (FC.check (alternatives_script ~second_branch:"alt.a")));
  (* only one branch does -> the property is may, not must: rejected *)
  let r = FC.check (alternatives_script ~second_branch:"alt.b") in
  check cb "one branch -> rejected" true (not (FC.ok r));
  check cb "unsatisfied requirement" true
    (List.exists
       (function FC.Unsatisfied_requires _ -> true | _ -> false)
       r.FC.fr_problems)

(* ---------------- foreach: fixpoint ---------------- *)

let test_foreach_reaches_fixpoint () =
  let script =
    B.script (fun rw root ->
        let l = B.match_op rw ~name:"scf.for" root in
        B.foreach rw l (fun brw it -> B.annotate brw ~name:"each.visited" it))
  in
  let rounds0 = counter "foreach_rounds" in
  let r = FC.check script in
  check cb "accepted" true (FC.ok r);
  let rounds = counter "foreach_rounds" - rounds0 in
  check cb "iterated to a fixpoint (>= 2 rounds, bounded)" true
    (rounds >= 2 && rounds <= 9)

let test_foreach_round2_consume_rejected () =
  (* the body consumes the iterated handle; round 2 re-binds from a
     consumed handle, which the fixpoint must flag *)
  let script =
    B.script (fun rw root ->
        let l = B.match_op rw ~name:"scf.for" root in
        B.foreach rw l (fun brw _it -> B.loop_unroll brw ~factor:2 l))
  in
  let r = FC.check script in
  check cb "rejected" true (not (FC.ok r));
  check cb "use-after-consume at the rebind" true
    (List.exists
       (function FC.Use_after_consume _ -> true | _ -> false)
       r.FC.fr_problems)

(* ---------------- include summaries ---------------- *)

let test_include_summary_reuse () =
  (* two call sites with the same argument state: the second one must be
     served from the summary cache *)
  let m =
    B.script (fun rw root ->
        let l = B.match_op rw ~name:"scf.for" root in
        ignore (B.include_ rw ~target:"fc_helper" [ l ] ~results:1);
        ignore (B.include_ rw ~target:"fc_helper" [ l ] ~results:1))
  in
  ignore
    (B.named_sequence m ~name:"fc_helper" ~num_args:1 (fun rw args ->
         let a = List.hd args in
         B.annotate rw ~name:"fc_helper.seen" a;
         [ a ]));
  let hits0 = counter "summary_hits" in
  let misses0 = counter "summary_misses" in
  let r = FC.check m in
  check cb "accepted" true (FC.ok r);
  check ci "second call site reuses the summary" 1
    (counter "summary_hits" - hits0);
  check cb "at most one fresh analysis" true
    (counter "summary_misses" - misses0 <= 1)

let test_include_consume_propagates () =
  (* the callee consumes its argument; the caller's operand must count as
     consumed across the include, so a later use is rejected *)
  let m =
    B.script (fun rw root ->
        let l = B.match_op rw ~name:"scf.for" root in
        ignore (B.include_ rw ~target:"fc_consumer" [ l ] ~results:0);
        B.annotate rw ~name:"late" l)
  in
  ignore
    (B.named_sequence m ~name:"fc_consumer" ~num_args:1 (fun rw args ->
         B.loop_unroll rw ~factor:2 (List.hd args);
         []));
  let r = FC.check m in
  check cb "rejected" true (not (FC.ok r));
  check cb "use-after-consume" true
    (List.exists
       (function FC.Use_after_consume _ -> true | _ -> false)
       r.FC.fr_problems)

(* ---------------- invalidation interaction ---------------- *)

let test_consumed_handle_flagged_by_both () =
  let script =
    B.script (fun rw root ->
        let l = B.match_op rw ~name:"scf.for" root in
        let _tiled = B.loop_tile rw ~sizes:[ 4 ] l in
        B.annotate rw ~name:"late" l)
  in
  let r = FC.check script in
  check cb "rejected" true (not (FC.ok r));
  check cb "flow checker reports the consumed use" true
    (List.exists
       (function FC.Use_after_consume _ -> true | _ -> false)
       r.FC.fr_problems);
  check cb "invalidation analysis agrees" true (r.FC.fr_invalidation <> [])

(* ---------------- shipped scripts ---------------- *)

let test_shipped_scripts_accepted () =
  let script =
    parse_file
      (Filename.concat ".."
         (Filename.concat "examples"
            (Filename.concat "scripts" "tile_and_unroll.mlir")))
  in
  check cb "tile_and_unroll is flow-sound" true (FC.ok (FC.check script))

(* ---------------- the Schedule gate ---------------- *)

let test_schedule_gate () =
  let s = Transform.Schedule.of_script ~flow:true ctx (vectorize_before_tile ()) in
  (match Transform.Schedule.flow_report s with
  | Some r -> check cb "flow report attached and rejecting" true (not (FC.ok r))
  | None -> Alcotest.fail "of_script ~flow:true attached no report");
  let payload = matmul () in
  let before = Printer.op_to_string payload in
  (match Transform.Schedule.apply s ~payload with
  | Ok _ -> Alcotest.fail "gate let an unsound schedule run"
  | Error e ->
    check cb "definite" true (not (Transform.Terror.is_silenceable e)));
  check cs "payload untouched by the gated schedule" before
    (Printer.op_to_string payload);
  (* a sound script passes through the same gate *)
  match
    Transform.Schedule.run ~flow:true ctx ~script:(tile_then_vectorize ())
      ~payload:(matmul ())
  with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "sound schedule rejected: %s" (Transform.Terror.to_string e)

let () =
  Alcotest.run "flowcheck"
    [
      ( "basics",
        [
          Alcotest.test_case "tile-then-vectorize-accepted" `Quick
            test_accepts_tile_then_vectorize;
          Alcotest.test_case "vectorize-before-tile-rejected" `Quick
            test_rejects_vectorize_before_tile;
          Alcotest.test_case "dynamic-checker-agrees" `Quick
            test_dynamic_checker_agrees;
        ] );
      ( "control-flow",
        [
          Alcotest.test_case "alternatives-must-join" `Quick
            test_alternatives_must_join;
          Alcotest.test_case "foreach-fixpoint" `Quick
            test_foreach_reaches_fixpoint;
          Alcotest.test_case "foreach-round2-consume" `Quick
            test_foreach_round2_consume_rejected;
        ] );
      ( "includes",
        [
          Alcotest.test_case "summary-reuse" `Quick test_include_summary_reuse;
          Alcotest.test_case "consume-propagates" `Quick
            test_include_consume_propagates;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "consumed-handle" `Quick
            test_consumed_handle_flagged_by_both;
        ] );
      ( "scripts",
        [
          Alcotest.test_case "shipped-scripts" `Quick
            test_shipped_scripts_accepted;
        ] );
      ( "schedule",
        [ Alcotest.test_case "flow-gate" `Quick test_schedule_gate ] );
    ]
